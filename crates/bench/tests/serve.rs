//! End-to-end tests for the `topogen-serve` daemon: concurrent
//! requests stay byte-identical to batch runs, repeats come from the
//! store, deadlines cancel without collateral damage, and saturation
//! rejects instead of buffering.

use std::sync::Arc;
use std::time::Duration;

use topogen_bench::serve::http::{http_post, HttpResponse};
use topogen_bench::serve::{self, MeasureRequest, ServeConfig};
use topogen_core::ctx::RunCtx;
use topogen_core::zoo::{Scale, TopologySpec};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("topogen-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(tag: &str, dir: &std::path::Path) -> ServeConfig {
    let mut config = ServeConfig::new("127.0.0.1:0");
    config.ledger_path = dir.join(format!("{tag}-ledger.jsonl"));
    config
}

fn mesh_request(seed: u64) -> MeasureRequest {
    MeasureRequest::new(TopologySpec::Mesh { side: 12 }, seed, Scale::Small)
}

#[test]
fn concurrent_requests_match_batch_outputs_byte_for_byte() {
    let dir = temp_dir("concurrent");
    let mut config = config("concurrent", &dir);
    config.store = Some(Arc::new(
        topogen_store::Store::open(dir.join("store")).unwrap(),
    ));
    config.workers = 4;
    let handle = serve::serve(config).unwrap();
    let addr = handle.addr();

    // Four different-seed requests in flight at once against one daemon.
    let responses: Vec<(u64, HttpResponse)> = [1u64, 2, 3, 4]
        .iter()
        .map(|&seed| {
            std::thread::spawn(move || {
                let req = mesh_request(seed);
                (seed, http_post(addr, "/measure", &req.to_json()).unwrap())
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();

    for (seed, resp) in &responses {
        assert_eq!(resp.status, 200, "seed {seed}: {}", resp.text());
        // The daemon's answer must be byte-identical to a solo batch
        // computation of the same params, whatever the interleaving.
        let batch = serve::run_measure(&RunCtx::new(), &mesh_request(*seed)).body();
        assert_eq!(resp.text(), batch, "seed {seed} diverged from batch");
    }

    // And byte-identical to the `repro measure` CLI for one of them.
    let req_path = dir.join("req.json");
    std::fs::write(&req_path, mesh_request(3).to_json()).unwrap();
    let cli = std::process::Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("measure")
        .arg(&req_path)
        .output()
        .unwrap();
    assert!(
        cli.status.success(),
        "{}",
        String::from_utf8_lossy(&cli.stderr)
    );
    let daemon_body = &responses.iter().find(|(s, _)| *s == 3).unwrap().1.body;
    assert_eq!(
        cli.stdout, *daemon_body,
        "daemon body and `repro measure` stdout disagree"
    );

    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repeat_request_is_served_from_the_store() {
    let dir = temp_dir("repeat");
    let mut config = config("repeat", &dir);
    config.store = Some(Arc::new(
        topogen_store::Store::open(dir.join("store")).unwrap(),
    ));
    let handle = serve::serve(config).unwrap();
    let addr = handle.addr();

    let req = mesh_request(42);
    let cold = http_post(addr, "/measure", &req.to_json()).unwrap();
    let warm = http_post(addr, "/measure", &req.to_json()).unwrap();
    assert_eq!(cold.status, 200);
    assert_eq!(warm.status, 200);
    assert_eq!(
        cold.headers.get("x-topogen-cache").map(String::as_str),
        Some("miss")
    );
    assert_eq!(
        warm.headers.get("x-topogen-cache").map(String::as_str),
        Some("hit")
    );
    assert_eq!(cold.body, warm.body, "cache hit changed the bytes");

    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_cancels_one_request_while_neighbors_complete() {
    let dir = temp_dir("deadline");
    let mut config = config("deadline", &dir);
    config.workers = 2;
    let handle = serve::serve(config).unwrap();
    let addr = handle.addr();

    // A heavy request with a deadline it cannot meet... (quick budgets:
    // the engines checkpoint per center, and a thorough center on a
    // 2500-node graph would make the *cancellation* itself slow in
    // debug builds)
    let heavy = std::thread::spawn(move || {
        let mut req =
            MeasureRequest::new(TopologySpec::Random { n: 2500, p: 0.003 }, 9, Scale::Small);
        req.deadline_secs = Some(0.15);
        http_post(addr, "/measure", &req.to_json()).unwrap()
    });
    // ...alongside a quick request that must be unaffected.
    let quick = http_post(addr, "/measure", &mesh_request(5).to_json()).unwrap();
    let heavy = heavy.join().unwrap();

    assert_eq!(heavy.status, 504, "expected a timeout: {}", heavy.text());
    assert_eq!(
        heavy.headers.get("x-topogen-status").map(String::as_str),
        Some("failures")
    );
    assert!(
        heavy.text().contains("deadline exceeded"),
        "{}",
        heavy.text()
    );
    // Pinned: the 504 arrives as a complete JSON document over a
    // cleanly closed connection — the client read to EOF without an
    // error, and the body parses standalone.
    assert!(
        serde_json::from_str::<serde::Content>(&heavy.text()).is_ok(),
        "504 body is not standalone JSON: {}",
        heavy.text()
    );
    assert_eq!(quick.status, 200, "neighbor was harmed: {}", quick.text());

    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saturated_daemon_rejects_with_429_instead_of_buffering() {
    let dir = temp_dir("saturate");
    let mut config = config("saturate", &dir);
    config.workers = 1;
    config.queue = 1;
    let handle = serve::serve(config).unwrap();
    let addr = handle.addr();

    // Occupy the only worker with a deadline-bounded heavy request,
    // then pile on concurrently: with one queue slot, at least two of
    // the four followers must be turned away with 429 immediately.
    let mut blocker =
        MeasureRequest::new(TopologySpec::Random { n: 2500, p: 0.003 }, 1, Scale::Small);
    blocker.deadline_secs = Some(3.0);
    let blocker_json = blocker.to_json();
    let blocker_thread =
        std::thread::spawn(move || http_post(addr, "/measure", &blocker_json).unwrap());
    std::thread::sleep(Duration::from_millis(300));

    let followers: Vec<HttpResponse> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                http_post(addr, "/measure", &mesh_request(100 + i).to_json()).unwrap()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    let rejected = followers.iter().filter(|r| r.status == 429).count();
    assert!(
        rejected >= 1,
        "expected at least one 429, got statuses {:?}",
        followers.iter().map(|r| r.status).collect::<Vec<_>>()
    );
    for resp in followers.iter().filter(|r| r.status == 429) {
        assert!(resp.text().contains("saturated"), "{}", resp.text());
        assert_eq!(
            resp.headers.get("x-topogen-status").map(String::as_str),
            Some("failures")
        );
        // Pinned: backpressure rejections advertise when to come back.
        assert_eq!(
            resp.headers.get("retry-after").map(String::as_str),
            Some("1"),
            "429 must carry Retry-After"
        );
    }
    let _ = blocker_thread.join().unwrap();

    // Every request — served, timed out, or rejected — must be in the
    // ledger.
    let ledger = std::fs::read_to_string(handle.ledger_path()).unwrap();
    assert!(
        ledger.lines().count() >= 5,
        "ledger is missing requests:\n{ledger}"
    );
    assert!(ledger.contains("\"http\":429"), "no 429 line:\n{ledger}");

    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_schema_version_is_rejected_cleanly() {
    let dir = temp_dir("version");
    let handle = serve::serve(config("version", &dir)).unwrap();
    let resp = http_post(
        handle.addr(),
        "/measure",
        r#"{"schema_version":99,"topology":"Mesh","seed":1}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        resp.text().contains("unsupported schema_version 99"),
        "{}",
        resp.text()
    );
    assert_eq!(
        resp.headers.get("x-topogen-code").map(String::as_str),
        Some("2"),
        "usage errors carry exit code 2"
    );
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn drain_under_load_cancels_stragglers_and_flushes_the_ledger() {
    let dir = temp_dir("drain");
    let mut config = config("drain", &dir);
    config.workers = 2;
    let mut handle = serve::serve(config).unwrap();
    let addr = handle.addr();

    // A heavy request with no deadline of its own: only the drain's
    // cancel sweep can stop it.
    let heavy = std::thread::spawn(move || {
        let req = MeasureRequest::new(TopologySpec::Random { n: 2500, p: 0.003 }, 9, Scale::Small);
        http_post(addr, "/measure", &req.to_json()).unwrap()
    });
    // Wait until it is provably in flight, then drain with a budget it
    // cannot meet.
    let arrived = std::time::Instant::now();
    while handle.in_flight() == 0 && arrived.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.in_flight() > 0, "heavy request never arrived");
    let summary = handle.drain(Duration::from_millis(200));
    assert!(summary.in_flight_at_stop >= 1);
    assert!(
        summary.cancelled >= 1,
        "the straggler was told to cancel: {summary}"
    );
    assert!(summary.drained, "drain must finish within grace: {summary}");
    assert_eq!(handle.in_flight(), 0);
    assert_eq!(
        summary.pool.live, 2,
        "full pool strength at drain: {summary}"
    );

    // The cancelled request was answered 504, not dropped on the floor.
    let heavy = heavy.join().unwrap();
    assert_eq!(heavy.status, 504, "{}", heavy.text());

    // The drain fsynced a complete ledger: every line parses, the tail
    // is whole, and the cancelled request is accounted for.
    let ledger = std::fs::read_to_string(handle.ledger_path()).unwrap();
    assert!(ledger.ends_with('\n'), "torn ledger tail after drain");
    for line in ledger.lines() {
        assert!(
            serde_json::from_str::<serde::Content>(line).is_ok(),
            "unparseable ledger line after drain: {line}"
        );
    }
    assert!(
        ledger.contains("\"http\":504"),
        "cancelled request missing from ledger:\n{ledger}"
    );

    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_requests_answer_500_quarantine_their_key_and_spare_the_pool() {
    let _x = topogen_par::faults::exclusive_for_tests();
    let dir = temp_dir("heal");
    let mut config = config("heal", &dir);
    config.workers = 2;
    let handle = serve::serve(config).unwrap();
    let addr = handle.addr();

    // Scoped to `Linear` builds so concurrent tests in this binary
    // (all Mesh/Random) never see the fault.
    topogen_par::faults::install_spec("build@Linear:panic:1:9").unwrap();
    let poison = MeasureRequest::new(TopologySpec::Linear { n: 32 }, 1, Scale::Small);
    for attempt in 0..serve::daemon::QUARANTINE_AFTER {
        let resp = http_post(addr, "/measure", &poison.to_json()).unwrap();
        assert_eq!(resp.status, 500, "attempt {attempt}: {}", resp.text());
        assert!(resp.text().contains("panicked"), "{}", resp.text());
    }
    topogen_par::faults::clear();

    // The key is quarantined now — refused before compute even though
    // the fault is gone (it's the guard talking, not the fault).
    let refused = http_post(addr, "/measure", &poison.to_json()).unwrap();
    assert_eq!(refused.status, 503, "{}", refused.text());
    assert!(refused.text().contains("quarantined"), "{}", refused.text());
    assert_eq!(
        refused.headers.get("retry-after").map(String::as_str),
        Some("1"),
        "quarantine rejections must carry Retry-After"
    );

    // The panics cost three requests, zero workers: the pool is at full
    // strength and other keys still serve.
    assert_eq!(handle.pool_stats().live, 2, "worker lost to a panic");
    let ok = http_post(addr, "/measure", &mesh_request(11).to_json()).unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());

    // The durable ledger records the panics with the payload redacted.
    let ledger = std::fs::read_to_string(handle.ledger_path()).unwrap();
    assert!(
        ledger.contains("panicked (payload redacted)"),
        "no redacted panic line:\n{ledger}"
    );
    assert!(
        !ledger.contains("injected fault"),
        "panic payload leaked into the ledger:\n{ledger}"
    );

    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_ledger_is_recovered_and_counted_at_startup() {
    let dir = temp_dir("recover");
    let config = config("recover", &dir);
    // A previous "crash" left one garbage line and a torn tail.
    std::fs::write(
        &config.ledger_path,
        "not json at all\n{\"schema_version\":1,\"torn\":",
    )
    .unwrap();
    let handle = serve::serve(config).unwrap();
    assert_eq!(handle.recovered_lines(), 2, "garbage line + torn tail");
    // The daemon starts and serves normally regardless.
    let resp = http_post(handle.addr(), "/measure", &mesh_request(3).to_json()).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let ledger = std::fs::read_to_string(handle.ledger_path()).unwrap();
    assert!(ledger.ends_with('\n'));
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_request_emits_progress_then_result() {
    let dir = temp_dir("stream");
    let handle = serve::serve(config("stream", &dir)).unwrap();
    let mut req = mesh_request(7);
    req.stream = true;
    let resp = http_post(handle.addr(), "/measure", &req.to_json()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.headers.get("content-type").map(String::as_str),
        Some("application/x-ndjson")
    );
    let text = resp.text();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > 1,
        "expected span events before the result, got {} line(s)",
        lines.len()
    );
    // Every line is standalone JSON; the last one is the result.
    let last = lines.last().unwrap();
    assert!(last.contains("\"topology\""), "bad tail line: {last}");
    let batch = serve::run_measure(&RunCtx::new(), &mesh_request(7)).body();
    let batch_compact: serde::Content = serde_json::from_str(&batch).unwrap();
    assert_eq!(
        *last,
        serde_json::to_string(&batch_compact).unwrap(),
        "stream tail differs from the batch result"
    );
    drop(handle);
    let _ = std::fs::remove_dir_all(&dir);
}
