//! Integration tests of the span-tracing layer: tracing must never
//! perturb results (archived JSON byte-identical with the sink on or
//! off, engines bit-identical at any thread count), and recorded span
//! trees must stay well-formed even when injected faults unwind worker
//! threads mid-span.
//!
//! Lock ordering: tests that need both harnesses take
//! `faults::exclusive_for_tests()` first, then
//! `trace::exclusive_for_tests()`.

use std::sync::Arc;
use topogen_bench::experiments as exp;
use topogen_bench::runner::{run_units, RunnerOptions, Unit};
use topogen_bench::tracefmt;
use topogen_bench::ExpCtx;
use topogen_generators::canonical::kary_tree;
use topogen_hierarchy::linkvalue::{link_values_threads, PathMode};
use topogen_par::{cancel, faults, trace};

/// Run `f` with a fresh trace sink installed, then uninstall it and
/// return `f`'s result plus the parsed JSONL events it recorded.
fn with_sink<R>(f: impl FnOnce() -> R) -> (R, Vec<tracefmt::TraceLine>) {
    let sink = Arc::new(trace::TraceSink::new());
    trace::install(Some(sink.clone()));
    let r = f();
    trace::install(None);
    let mut buf = Vec::new();
    sink.write_jsonl(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let events = tracefmt::parse_jsonl(&text).unwrap_or_else(|e| panic!("bad JSONL: {e}"));
    (r, events)
}

#[test]
fn archived_json_is_byte_identical_with_tracing_on_and_off() {
    let _trace_guard = trace::exclusive_for_tests();
    let ctx = ExpCtx::default();
    let untraced = serde_json::to_string_pretty(&exp::tab1::run(&ctx)).unwrap();
    let (traced, _events) =
        with_sink(|| serde_json::to_string_pretty(&exp::tab1::run(&ctx)).unwrap());
    assert_eq!(untraced, traced, "tracing must not change archived JSON");
}

#[test]
fn traced_results_are_identical_across_thread_counts() {
    let _trace_guard = trace::exclusive_for_tests();
    let g = kary_tree(3, 4);
    let (values, events): (Vec<Vec<f64>>, _) = with_sink(|| {
        [1usize, 2, 8]
            .iter()
            .map(|&t| link_values_threads(&g, &PathMode::Shortest, Some(t), None))
            .collect()
    });
    assert_eq!(values[0], values[1], "1 vs 2 threads");
    assert_eq!(values[0], values[2], "1 vs 8 threads");
    // All three runs recorded their stage spans.
    let covers = events
        .iter()
        .filter(|e| e.ev == "enter" && e.name == "hier-cover")
        .count();
    assert_eq!(covers, 3);
    tracefmt::check_well_formed(&events).unwrap();
}

#[test]
fn span_tree_is_well_formed_under_injected_panics() {
    let _fault_guard = faults::exclusive_for_tests();
    let _trace_guard = trace::exclusive_for_tests();
    // Panic every `build` fault-site hit: the worker thread unwinds out
    // of whatever spans are open. SpanGuard drops during the unwind, so
    // every enter must still have a LIFO-matching exit per thread.
    faults::install_spec("build:panic:1:3").unwrap();
    let units = vec![
        Unit::new("faulted-a", |_| {
            let _inner = trace::span("inner-work");
            faults::inject("build", "faulted-a");
            cancel::checkpoint();
            Ok(())
        }),
        Unit::new("faulted-b", |_| {
            let _inner = trace::span("inner-work");
            faults::inject("build", "faulted-b");
            cancel::checkpoint();
            Ok(())
        }),
    ];
    let opts = RunnerOptions {
        keep_going: true,
        retries: 1,
        ..Default::default()
    };
    let (report, events) = with_sink(|| run_units(&units, &opts, 21, "small"));
    faults::clear();
    assert_eq!(
        report.exit_code,
        topogen_bench::ExitCode::Failures,
        "both units fail under the fault"
    );

    tracefmt::check_well_formed(&events).unwrap();
    let enters = events.iter().filter(|e| e.ev == "enter").count();
    let exits = events.iter().filter(|e| e.ev == "exit").count();
    assert_eq!(enters, exits, "every span entered was closed");
    // The panicking inner spans were recorded and closed by the unwind:
    // 2 units x 2 attempts.
    let inner_exits = events
        .iter()
        .filter(|e| e.ev == "exit" && e.name == "inner-work")
        .count();
    assert_eq!(inner_exits, 4);
    // Runner instrumentation is present: a suite span, per-unit spans,
    // and per-attempt spans with the retry visible.
    assert_eq!(
        events
            .iter()
            .filter(|e| e.ev == "enter" && e.name == "suite")
            .count(),
        1
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| e.ev == "enter" && e.name == "unit")
            .count(),
        2
    );
    let attempts: Vec<&str> = events
        .iter()
        .filter(|e| e.ev == "enter" && e.name == "attempt")
        .map(|e| e.label.as_deref().unwrap_or(""))
        .collect();
    assert_eq!(attempts, vec!["0", "1", "0", "1"]);
}

#[test]
fn attempt_spans_parent_under_their_unit() {
    let _trace_guard = trace::exclusive_for_tests();
    let units = vec![Unit::new("solo", |_| Ok(()))];
    let (_report, events) = with_sink(|| run_units(&units, &RunnerOptions::default(), 7, "small"));
    tracefmt::check_well_formed(&events).unwrap();
    let find_enter = |name: &str| {
        events
            .iter()
            .find(|e| e.ev == "enter" && e.name == name)
            .unwrap_or_else(|| panic!("no {name} span"))
    };
    let suite = find_enter("suite");
    let unit = find_enter("unit");
    let attempt = find_enter("attempt");
    assert_eq!(suite.parent, Some(0), "suite is a root span");
    assert_eq!(unit.parent, Some(suite.id));
    assert_eq!(attempt.parent, Some(unit.id));
    assert_eq!(unit.label.as_deref(), Some("solo"));
    // The unit body runs on a spawned thread: the attempt's parent link
    // crosses the thread boundary, so tids may differ but ids connect.
    let inner: Vec<_> = events
        .iter()
        .filter(|e| e.ev == "enter" && e.parent == Some(attempt.id))
        .collect();
    assert!(
        inner.is_empty() || inner.iter().all(|e| e.id > attempt.id),
        "children open after their parent"
    );
}
