//! The Appendix B kernels (Figures 6–10): CCDFs, eigensolvers,
//! eccentricity, vertex cover, biconnectivity, tolerance, clustering.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_generators::canonical::mesh;
use topogen_generators::degseq::degree_ccdf;
use topogen_generators::plrg::{plrg, PlrgParams};
use topogen_graph::bicon::biconnected_components;
use topogen_graph::components::largest_component;
use topogen_metrics::clustering::graph_clustering;
use topogen_metrics::cover::vertex_cover_size;
use topogen_metrics::eccentricity::eccentricity_sample;
use topogen_metrics::spectrum::eigenvalue_spectrum;
use topogen_metrics::tolerance::{tolerance_curve, Removal};

fn bench_appendix_b(c: &mut Criterion) {
    let mut g = c.benchmark_group("appendix-b");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(9);
    let p = largest_component(&plrg(
        &PlrgParams {
            n: 1300,
            alpha: 2.246,
            max_degree: None,
        },
        &mut rng,
    ))
    .0;
    let m = mesh(30, 30);

    g.bench_function("fig6/ccdf-plrg", |b| b.iter(|| degree_ccdf(&p)));
    g.bench_function("fig7/lanczos20-plrg", |b| {
        b.iter(|| eigenvalue_spectrum(&p, 20, 1))
    });
    g.bench_function("fig7/eccentricity150-plrg", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            eccentricity_sample(&p, 150, &mut r)
        })
    });
    g.bench_function("fig8/vertex-cover-plrg", |b| {
        b.iter(|| vertex_cover_size(&p))
    });
    g.bench_function("fig8/biconnectivity-plrg", |b| {
        b.iter(|| biconnected_components(&p).component_count)
    });
    g.bench_function("fig9/tolerance-attack-plrg", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(3);
            tolerance_curve(&p, Removal::Attack, &[0.0, 0.1], 10, &mut r)
        })
    });
    g.bench_function("fig10/clustering-mesh", |b| b.iter(|| graph_clustering(&m)));
    g.bench_function("fig10/clustering-plrg", |b| b.iter(|| graph_clustering(&p)));
    g.finish();
}

criterion_group!(benches, bench_appendix_b);
criterion_main!(benches);
