//! The Figure 2 kernels: expansion sweeps, balanced bisection
//! (resilience) and spanning-tree distortion on representative balls.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_generators::canonical::{kary_tree, mesh, random_gnp};
use topogen_generators::plrg::{plrg, PlrgParams};
use topogen_graph::components::largest_component;
use topogen_graph::Graph;
use topogen_metrics::balls::{sample_centers, PlainBalls};
use topogen_metrics::distortion::{graph_distortion, DistortionParams};
use topogen_metrics::expansion::expansion_curve;
use topogen_metrics::partition::min_balanced_cut;

fn fixtures() -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(7);
    vec![
        ("tree", kary_tree(3, 6)),
        ("mesh", mesh(30, 30)),
        (
            "random",
            largest_component(&random_gnp(1200, 0.0035, &mut rng)).0,
        ),
        (
            "plrg",
            largest_component(&plrg(
                &PlrgParams {
                    n: 1300,
                    alpha: 2.246,
                    max_degree: None,
                },
                &mut rng,
            ))
            .0,
        ),
    ]
}

fn bench_expansion(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/expansion");
    g.sample_size(10);
    for (name, graph) in fixtures() {
        let src = PlainBalls { graph: &graph };
        let mut rng = StdRng::seed_from_u64(3);
        let centers = sample_centers(graph.node_count(), 60, &mut rng);
        g.bench_function(name, |b| b.iter(|| expansion_curve(&src, &centers, 40)));
    }
    g.finish();
}

fn bench_resilience(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/resilience-partition");
    g.sample_size(10);
    for (name, graph) in fixtures() {
        g.bench_function(name, |b| b.iter(|| min_balanced_cut(&graph, 2, 1).unwrap()));
    }
    g.finish();
}

fn bench_distortion(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/distortion");
    g.sample_size(10);
    let params = DistortionParams::default();
    for (name, graph) in fixtures() {
        // Whole-graph distortion (the largest ball of the curve).
        g.bench_function(name, |b| {
            b.iter(|| graph_distortion(&graph, &params).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_expansion, bench_resilience, bench_distortion);
criterion_main!(benches);
