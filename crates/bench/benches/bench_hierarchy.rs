//! The §5 kernels behind Figures 3–5 and 14: traversal-set
//! accumulation and weighted-vertex-cover link values, plain and policy
//! — plus the arena-engine speedup report.
//!
//! Besides the criterion timings, this bench measures `link_values` on a
//! ~2,000-node PLRG (the scale the paper reserved for the RL *core*,
//! footnote 29) with the serial pre-arena baseline and with the parallel
//! arena engine at 1/2/8 workers, checks the outputs are bit-identical,
//! and archives everything as `out/BENCH_hierarchy.json` (the CI bench
//! workflow uploads it next to the PR-1 metrics bench output). `--quick`
//! shrinks the graph and the repetitions for smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use topogen_generators::canonical::kary_tree;
use topogen_generators::plrg::{plrg, PlrgParams};
use topogen_graph::components::largest_component;
use topogen_graph::Graph;
use topogen_hierarchy::baseline::link_values_ref;
use topogen_hierarchy::linkvalue::{link_values, link_values_threads, PathMode};
use topogen_hierarchy::traversal::link_traversals;
use topogen_measured::as_graph::{internet_as, InternetAsParams};
use topogen_par::Instrument;

fn bench_linkvalues(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/link-values");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let plrg_g = largest_component(&plrg(
        &PlrgParams {
            n: 400,
            alpha: 2.246,
            max_degree: None,
        },
        &mut rng,
    ))
    .0;
    let tree = kary_tree(3, 5);

    g.bench_function("traversal-sets/plrg400", |b| {
        b.iter(|| link_traversals(&plrg_g, &PathMode::Shortest))
    });
    g.bench_function("link-values/plrg400", |b| {
        b.iter(|| link_values(&plrg_g, &PathMode::Shortest))
    });
    g.bench_function("link-values/plrg400-serial-baseline", |b| {
        b.iter(|| link_values_ref(&plrg_g, &PathMode::Shortest))
    });
    g.bench_function("link-values/tree364", |b| {
        b.iter(|| link_values(&tree, &PathMode::Shortest))
    });

    // Policy link values on a smaller annotated Internet.
    let m = internet_as(
        &InternetAsParams {
            n: 400,
            ..InternetAsParams::default_scaled()
        },
        &mut rng,
    );
    g.bench_function("link-values/as400-policy", |b| {
        b.iter(|| link_values(&m.graph, &PathMode::Policy(&m.annotations)))
    });
    g.finish();
}

/// Minimum wall time of `reps` runs.
fn time_min<F: FnMut() -> R, R>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// Serial-baseline vs arena-engine speedup on a ~2,000-node PLRG,
/// archived as `out/BENCH_hierarchy.json`.
fn speedup_report(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, reps) = if quick { (500, 1) } else { (2000, 3) };
    let mut rng = StdRng::seed_from_u64(7);
    let g: Graph = largest_component(&plrg(
        &PlrgParams {
            n,
            alpha: 2.246,
            max_degree: None,
        },
        &mut rng,
    ))
    .0;
    let mode = PathMode::Shortest;

    let t_baseline = time_min(reps, || link_values_ref(&g, &mode));
    let serial_values = link_values_ref(&g, &mode);

    let mut per_thread: Vec<(usize, Duration)> = Vec::new();
    let mut bit_identical = true;
    for threads in [1usize, 2, 8] {
        let t = time_min(reps, || link_values_threads(&g, &mode, Some(threads), None));
        let values = link_values_threads(&g, &mode, Some(threads), None);
        bit_identical &= values.len() == serial_values.len()
            && values
                .iter()
                .zip(&serial_values)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        per_thread.push((threads, t));
    }
    let t_auto = time_min(reps, || link_values(&g, &mode));

    let ins = Instrument::new();
    let _ = link_values_threads(&g, &mode, None, Some(&ins));
    let r = ins.report();

    let best_engine = per_thread
        .iter()
        .map(|&(_, t)| t)
        .chain(std::iter::once(t_auto))
        .min()
        .unwrap();
    let speedup = t_baseline.as_secs_f64() / best_engine.as_secs_f64();

    println!(
        "speedup report: plrg{} ({} nodes, {} links) baseline {:?}, engine best {:?} ({speedup:.2}x), bit-identical {bit_identical}",
        n,
        g.node_count(),
        g.edge_count(),
        t_baseline,
        best_engine,
    );

    let threads_json: Vec<String> = per_thread
        .iter()
        .map(|(k, t)| format!("    \"{k}\": {:.6}", t.as_secs_f64()))
        .collect();
    let json = format!(
        "{{\n  \"graph\": {{ \"model\": \"PLRG\", \"alpha\": 2.246, \"nodes\": {}, \"links\": {} }},\n  \"quick\": {},\n  \"reps\": {},\n  \"serial_baseline_secs\": {:.6},\n  \"arena_engine_secs\": {{\n{}\n  }},\n  \"arena_engine_auto_secs\": {:.6},\n  \"speedup_vs_serial_baseline\": {:.3},\n  \"bit_identical_across_1_2_8_threads\": {},\n  \"dag_states\": {},\n  \"pairs_accumulated\": {},\n  \"arena_bytes\": {}\n}}\n",
        g.node_count(),
        g.edge_count(),
        quick,
        reps,
        t_baseline.as_secs_f64(),
        threads_json.join(",\n"),
        t_auto.as_secs_f64(),
        speedup,
        bit_identical,
        r.dag_states,
        r.pairs_accumulated,
        r.arena_bytes,
    );
    // Benches run with the package dir as cwd; anchor the default output
    // at the workspace root so CI finds it at out/BENCH_hierarchy.json.
    let dir = std::env::var("BENCH_OUT_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../out").into());
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|_| std::fs::write(format!("{dir}/BENCH_hierarchy.json"), &json))
    {
        eprintln!("warning: cannot write {dir}/BENCH_hierarchy.json: {e}");
    } else {
        println!("wrote {dir}/BENCH_hierarchy.json");
    }
    assert!(bit_identical, "thread counts 1/2/8 must agree bit-for-bit");
}

criterion_group!(benches, bench_linkvalues, speedup_report);
criterion_main!(benches);
