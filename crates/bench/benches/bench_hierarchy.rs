//! The §5 kernels behind Figures 3–5 and 14: traversal-set
//! accumulation and weighted-vertex-cover link values, plain and policy.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_generators::canonical::kary_tree;
use topogen_generators::plrg::{plrg, PlrgParams};
use topogen_graph::components::largest_component;
use topogen_hierarchy::linkvalue::{link_values, PathMode};
use topogen_hierarchy::traversal::link_traversals;
use topogen_measured::as_graph::{internet_as, InternetAsParams};

fn bench_linkvalues(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/link-values");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let plrg_g = largest_component(&plrg(
        &PlrgParams {
            n: 400,
            alpha: 2.246,
            max_degree: None,
        },
        &mut rng,
    ))
    .0;
    let tree = kary_tree(3, 5);

    g.bench_function("traversal-sets/plrg400", |b| {
        b.iter(|| link_traversals(&plrg_g, &PathMode::Shortest))
    });
    g.bench_function("link-values/plrg400", |b| {
        b.iter(|| link_values(&plrg_g, &PathMode::Shortest))
    });
    g.bench_function("link-values/tree364", |b| {
        b.iter(|| link_values(&tree, &PathMode::Shortest))
    });

    // Policy link values on a smaller annotated Internet.
    let m = internet_as(
        &InternetAsParams {
            n: 400,
            ..InternetAsParams::default_scaled()
        },
        &mut rng,
    );
    g.bench_function("link-values/as400-policy", |b| {
        b.iter(|| link_values(&m.graph, &PathMode::Policy(&m.annotations)))
    });
    g.finish();
}

criterion_group!(benches, bench_linkvalues);
criterion_main!(benches);
