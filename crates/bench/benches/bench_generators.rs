//! Generator throughput (supports Table 1 / Figure 11 reproductions):
//! how long each topology generator takes at the paper's working sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_generators::ba::{barabasi_albert, BaParams};
use topogen_generators::brite::{brite, BriteParams};
use topogen_generators::canonical::random_gnp;
use topogen_generators::glp::{glp, GlpParams};
use topogen_generators::inet::{inet, InetParams};
use topogen_generators::plrg::{plrg, PlrgParams};
use topogen_generators::tiers::{tiers, TiersParams};
use topogen_generators::transit_stub::{transit_stub, TransitStubParams};
use topogen_generators::waxman::{waxman, WaxmanParams};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.sample_size(10);
    let n = 2000usize;

    g.bench_function(BenchmarkId::new("plrg", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            plrg(
                &PlrgParams {
                    n,
                    alpha: 2.246,
                    max_degree: None,
                },
                &mut rng,
            )
        })
    });
    g.bench_function(BenchmarkId::new("ba", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            barabasi_albert(&BaParams { n, m: 2 }, &mut rng)
        })
    });
    g.bench_function(BenchmarkId::new("glp", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            glp(&GlpParams::paper_as_fit(n), &mut rng)
        })
    });
    g.bench_function(BenchmarkId::new("inet", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            inet(&InetParams::paper_default(n), &mut rng)
        })
    });
    g.bench_function(BenchmarkId::new("brite", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            brite(&BriteParams::paper_default(n), &mut rng)
        })
    });
    g.bench_function(BenchmarkId::new("waxman", 1200), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            waxman(
                &WaxmanParams {
                    n: 1200,
                    alpha: 0.02,
                    beta: 0.3,
                },
                &mut rng,
            )
        })
    });
    g.bench_function("transit_stub/1008", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            transit_stub(&TransitStubParams::paper_default(), &mut rng)
        })
    });
    g.bench_function("tiers/950", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            tiers(
                &TiersParams {
                    mans_per_wan: 10,
                    lans_per_man: 8,
                    wan_nodes: 350,
                    man_nodes: 20,
                    lan_nodes: 5,
                    ..TiersParams::paper_default()
                },
                &mut rng,
            )
        })
    });
    g.bench_function(BenchmarkId::new("gnp", n), |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            random_gnp(n, 0.002, &mut rng)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
