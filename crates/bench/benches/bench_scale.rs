//! The `--scale large` BFS-kernel workload: per-center scalar BFS vs
//! the 64-lane multi-source bitset kernel over seeded sampled centers,
//! on the structural (Mesh) and degree-based (PLRG) families.
//!
//! Besides wall-clock, the run checks the two kernels produce identical
//! ring profiles, streams a million-node PLRG through the
//! memory-budgeted spill-and-merge builder (asserting the edge scratch
//! stays under budget), and archives `out/BENCH_scale.json`:
//! per-topology timings, the xl build record, plus a top-level `"gate"`
//! object of deterministic operation counters (`words_scanned`,
//! `frontier_passes`, `spill_runs`) that `repro perf-gate` ratchets
//! against the committed baseline in `ci/perf-baselines/`.
//! Wall-clock fields are advisory-only — the gate never reads them.
//! `--quick` shrinks the graphs for smoke runs (and is what the
//! committed baseline was produced with).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};
use topogen_generators::canonical::mesh;
use topogen_generators::plrg::{plrg, plrg_into, PlrgParams};
use topogen_graph::bfs;
use topogen_graph::bfs_bitset::{multi_source_ring_counts, BfsStats};
use topogen_graph::components::largest_component;
use topogen_graph::stream::StreamingBuilder;
use topogen_graph::Graph;
use topogen_metrics::balls::sample_centers;

/// Minimum wall time of `reps` runs.
fn time_min<F: FnMut() -> R, R>(reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

struct Row {
    name: String,
    nodes: usize,
    edges: usize,
    sources: usize,
    scalar_secs: f64,
    bitset_secs: f64,
    identical: bool,
}

/// One topology's scalar-vs-bitset comparison; returns the row plus the
/// bitset kernel's deterministic counters.
fn compare(name: &str, g: &Graph, max_h: u32, reps: usize) -> (Row, BfsStats) {
    let mut rng = StdRng::seed_from_u64(42);
    let sources = sample_centers(g.node_count(), 64, &mut rng);

    let t_scalar = time_min(reps, || {
        sources
            .iter()
            .map(|&s| bfs::ring_sizes(g, s, max_h))
            .collect::<Vec<_>>()
    });
    let scalar_rings: Vec<Vec<usize>> = sources
        .iter()
        .map(|&s| bfs::ring_sizes(g, s, max_h))
        .collect();

    let t_bitset = time_min(reps, || {
        let mut stats = BfsStats::default();
        multi_source_ring_counts(g, &sources, max_h, &mut stats)
    });
    let mut stats = BfsStats::default();
    let bitset_rings = multi_source_ring_counts(g, &sources, max_h, &mut stats);

    let row = Row {
        name: name.to_string(),
        nodes: g.node_count(),
        edges: g.edge_count(),
        sources: sources.len(),
        scalar_secs: t_scalar.as_secs_f64(),
        bitset_secs: t_bitset.as_secs_f64(),
        identical: bitset_rings == scalar_rings,
    };
    (row, stats)
}

/// The archived scale report: Mesh (structural) and PLRG (degree-based)
/// at `--scale large`-style sizes, written to `out/BENCH_scale.json`.
fn scale_report(_c: &mut Criterion) {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mirrors the committed perf-gate baseline; full runs the
    // actual large-tier populations (Mesh 414^2 = 171,396; PLRG 170k).
    let (mesh_side, plrg_n, reps) = if quick {
        (64, 12_000, 1)
    } else {
        (414, 170_000, 3)
    };
    let max_h = 64;

    let mesh_g = mesh(mesh_side, mesh_side);
    let mut rng = StdRng::seed_from_u64(9);
    let plrg_g = largest_component(&plrg(
        &PlrgParams {
            n: plrg_n,
            alpha: 2.246,
            max_degree: None,
        },
        &mut rng,
    ))
    .0;

    let mut rows = Vec::new();
    let mut gate = BfsStats::default();
    for (name, g) in [
        (format!("Mesh{mesh_side}"), &mesh_g),
        (format!("PLRG{plrg_n}"), &plrg_g),
    ] {
        let (row, stats) = compare(&name, g, max_h, reps);
        println!(
            "scale report: {} ({} nodes, {} edges, {} sources) scalar {:.4}s, bitset {:.4}s ({:.2}x), identical {}",
            row.name,
            row.nodes,
            row.edges,
            row.sources,
            row.scalar_secs,
            row.bitset_secs,
            row.scalar_secs / row.bitset_secs.max(1e-12),
            row.identical,
        );
        gate.merge(&stats);
        rows.push(row);
    }
    let all_identical = rows.iter().all(|r| r.identical);

    // The xl probe: a million-node PLRG built through the streaming
    // spill-and-merge path under a hard 8 MiB edge-scratch budget —
    // the tier whose raw edge buffer the in-memory builder cannot
    // afford to hold. Runs in quick mode too (seconds in release), so
    // the committed baseline gates its spill count.
    let xl_budget: u64 = 8 * 1024 * 1024;
    let xl_n = 1_000_000usize;
    let scratch = std::env::temp_dir().join(format!("topogen-bench-xl-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&scratch);
    let xl_start = Instant::now();
    let mut sink = StreamingBuilder::new(0, Some(xl_budget), &scratch);
    let mut xl_rng = StdRng::seed_from_u64(77);
    plrg_into(
        &PlrgParams {
            n: xl_n,
            alpha: 2.246,
            max_degree: None,
        },
        &mut xl_rng,
        &mut sink,
    );
    let (xl_g, xl_stats) = sink.build();
    let xl_secs = xl_start.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&scratch);
    println!(
        "scale report: PLRG{xl_n} streamed under {xl_budget} B: {} nodes, {} edges, \
         peak {} B, {} spill run(s), {xl_secs:.3}s",
        xl_g.node_count(),
        xl_g.edge_count(),
        xl_stats.peak_bytes,
        xl_stats.spill_runs,
    );
    assert!(
        xl_stats.spill_runs >= 1,
        "the xl build must exercise the spill path"
    );
    assert!(
        xl_stats.peak_bytes <= xl_budget,
        "edge-scratch peak {} exceeded the {xl_budget}-byte budget",
        xl_stats.peak_bytes
    );

    let rows_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"name\": \"{}\", \"nodes\": {}, \"edges\": {}, \"sources\": {}, \"scalar_secs\": {:.6}, \"bitset_secs\": {:.6}, \"speedup\": {:.3}, \"identical\": {} }}",
                r.name,
                r.nodes,
                r.edges,
                r.sources,
                r.scalar_secs,
                r.bitset_secs,
                r.scalar_secs / r.bitset_secs.max(1e-12),
                r.identical,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"quick\": {},\n  \"max_h\": {},\n  \"reps\": {},\n  \"rows\": [\n{}\n  ],\n  \"bit_identical\": {},\n  \"xl\": {{\n    \"name\": \"PLRG{}\",\n    \"nodes\": {},\n    \"edges\": {},\n    \"budget_bytes\": {},\n    \"peak_bytes\": {},\n    \"spill_runs\": {},\n    \"build_secs\": {:.6}\n  }},\n  \"gate\": {{\n    \"words_scanned\": {},\n    \"frontier_passes\": {},\n    \"spill_runs\": {}\n  }}\n}}\n",
        quick,
        max_h,
        reps,
        rows_json.join(",\n"),
        all_identical,
        xl_n,
        xl_g.node_count(),
        xl_g.edge_count(),
        xl_budget,
        xl_stats.peak_bytes,
        xl_stats.spill_runs,
        xl_secs,
        gate.words_scanned,
        gate.frontier_passes,
        xl_stats.spill_runs,
    );
    // Benches run with the package dir as cwd; anchor the default output
    // at the workspace root so CI finds it at out/BENCH_scale.json.
    let dir = std::env::var("BENCH_OUT_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../out").into());
    if let Err(e) = std::fs::create_dir_all(&dir)
        .and_then(|_| std::fs::write(format!("{dir}/BENCH_scale.json"), &json))
    {
        eprintln!("warning: cannot write {dir}/BENCH_scale.json: {e}");
    } else {
        println!("wrote {dir}/BENCH_scale.json");
    }
    assert!(all_identical, "bitset rings must match scalar BFS exactly");
}

criterion_group!(benches, scale_report);
criterion_main!(benches);
