//! The Appendix E kernels: valley-free BFS, policy balls, BGP table
//! simulation, and Gao inference over the synthetic Internet.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_measured::as_graph::{internet_as, InternetAsParams};
use topogen_policy::balls::policy_ball;
use topogen_policy::bgp::{routing_table, routing_tables, top_degree_nodes};
use topogen_policy::gao::{infer_relationships, GaoConfig};
use topogen_policy::valley::policy_shortest_path_dag;

fn bench_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15/policy");
    g.sample_size(10);
    let mut rng = StdRng::seed_from_u64(11);
    let m = internet_as(&InternetAsParams::default_scaled(), &mut rng);
    let stub = (m.graph.node_count() - 1) as u32;

    g.bench_function("valley-bfs/as1100", |b| {
        b.iter(|| policy_shortest_path_dag(&m.graph, &m.annotations, stub))
    });
    g.bench_function("policy-ball-h4/as1100", |b| {
        b.iter(|| policy_ball(&m.graph, &m.annotations, stub, 4))
    });
    g.bench_function("bgp-table/as1100", |b| {
        b.iter(|| routing_table(&m.graph, &m.annotations, 0))
    });
    let tables = routing_tables(&m.graph, &m.annotations, &top_degree_nodes(&m.graph, 3));
    g.bench_function("gao-inference/as1100x3", |b| {
        b.iter(|| infer_relationships(&m.graph, &tables, &GaoConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_policy);
criterion_main!(benches);
