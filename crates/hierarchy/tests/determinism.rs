//! Determinism and arena invariants of the parallel link-value engine.
//!
//! The engine's contract: results are *bit-identical* at any thread
//! count (1, 2, 8 — including more workers than cores), for plain and
//! policy paths, and they reproduce the serial pre-arena reference
//! implementation exactly.

use topogen_generators::canonical::{kary_tree, mesh};
use topogen_graph::{bfs, Graph, NodeId};
use topogen_hierarchy::baseline::{link_traversals_ref, link_values_ref};
use topogen_hierarchy::linkvalue::{link_values, link_values_threads, PathMode};
use topogen_hierarchy::traversal::{link_traversals, link_traversals_threads, PairWeight};
use topogen_policy::rel::{annotations_from_pairs, AsAnnotations};

fn star(n: usize) -> Graph {
    Graph::from_edges(n, (1..n as NodeId).map(|i| (0, i)))
}

/// A small annotated graph exercising providers, peers, and equal-cost
/// policy paths: two mid-tier nodes under a peered top pair, with
/// multihomed leaves.
fn policy_graph() -> (Graph, AsAnnotations) {
    let g = Graph::from_edges(
        8,
        vec![
            (0, 1), // peers (top tier)
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (3, 5),
            (3, 6),
            (4, 7),
            (5, 7),
        ],
    );
    let ann = annotations_from_pairs(
        &g,
        &[
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 4),
            (2, 5),
            (3, 5),
            (3, 6),
            (4, 7),
            (5, 7),
        ],
        &[(0, 1)],
        &[],
    );
    (g, ann)
}

fn all_pairs(t: &topogen_hierarchy::LinkTraversals) -> Vec<Vec<PairWeight>> {
    t.iter_links().map(|l| l.to_vec()).collect()
}

/// Bit-identical traversal sets and link values across 1/2/8 workers.
fn assert_thread_invariance(g: &Graph, mode: &PathMode<'_>) {
    let t1 = link_traversals_threads(g, mode, Some(1), None);
    let v1 = link_values_threads(g, mode, Some(1), None);
    for threads in [2, 8] {
        let tn = link_traversals_threads(g, mode, Some(threads), None);
        assert_eq!(
            all_pairs(&t1),
            all_pairs(&tn),
            "traversal sets differ at {threads} threads"
        );
        let vn = link_values_threads(g, mode, Some(threads), None);
        assert_eq!(v1.len(), vn.len());
        for (i, (a, b)) in v1.iter().zip(&vn).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "link {i} value differs at {threads} threads: {a} vs {b}"
            );
        }
    }
}

#[test]
fn thread_invariance_tree() {
    assert_thread_invariance(&kary_tree(3, 4), &PathMode::Shortest);
}

#[test]
fn thread_invariance_mesh() {
    assert_thread_invariance(&mesh(7, 7), &PathMode::Shortest);
}

#[test]
fn thread_invariance_star() {
    assert_thread_invariance(&star(24), &PathMode::Shortest);
}

#[test]
fn thread_invariance_policy() {
    let (g, ann) = policy_graph();
    // Sanity: the policy mode actually constrains some pairs, so this
    // exercises multi-state DAGs rather than collapsing to plain BFS.
    let plain: usize = link_traversals(&g, &PathMode::Shortest)
        .sizes()
        .iter()
        .sum();
    let pol: usize = link_traversals(&g, &PathMode::Policy(&ann))
        .sizes()
        .iter()
        .sum();
    assert!(pol <= plain);
    assert!(pol > 0, "policy graph must route something");
    assert_thread_invariance(&g, &PathMode::Policy(&ann));
}

/// The arena reproduces the serial pre-arena reference bit-for-bit.
#[test]
fn arena_matches_reference_engine() {
    for (g, mode) in [
        (kary_tree(2, 5), PathMode::Shortest),
        (mesh(6, 6), PathMode::Shortest),
        (star(12), PathMode::Shortest),
    ] {
        let arena = link_traversals(&g, &mode);
        let reference = link_traversals_ref(&g, &mode);
        assert_eq!(arena.link_count(), reference.len());
        for (l, ref_pairs) in reference.iter().enumerate() {
            let mut sorted_ref = ref_pairs.clone();
            // The reference pushes a pair's links in HashMap order, but
            // each link still receives its pairs in (u, v) order — only
            // the per-pair *weights* need an order-insensitive check.
            sorted_ref.sort_by_key(|p| (p.u, p.v));
            assert_eq!(arena.link(l), &sorted_ref[..], "link {l} differs");
        }
        let values = link_values(&g, &mode);
        let ref_values = link_values_ref(&g, &mode);
        assert_eq!(values.len(), ref_values.len());
        for (i, (a, b)) in values.iter().zip(&ref_values).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "value {i}: {a} vs {b}");
        }
    }
}

#[test]
fn policy_values_match_reference() {
    let (g, ann) = policy_graph();
    let mode = PathMode::Policy(&ann);
    let values = link_values(&g, &mode);
    let reference = link_values_ref(&g, &mode);
    assert_eq!(values.len(), reference.len());
    for (a, b) in values.iter().zip(&reference) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Flow conservation on the arena representation: for every pair,
/// Σ_links w(u, v, l) equals the pair's shortest-path distance.
#[test]
fn arena_flow_conservation() {
    let g = mesh(6, 6);
    let t = link_traversals(&g, &PathMode::Shortest);
    let n = g.node_count();
    let mut per_pair = vec![0.0f64; n * n];
    for link in t.iter_links() {
        for pw in link {
            assert!(pw.u < pw.v, "pairs are normalized");
            assert!(pw.w > 0.0 && pw.w <= 1.0 + 1e-9);
            per_pair[pw.u as usize * n + pw.v as usize] += pw.w;
        }
    }
    for u in 0..n as NodeId {
        let dist = bfs::distances(&g, u);
        for v in (u + 1)..n as NodeId {
            let total = per_pair[u as usize * n + v as usize];
            let d = dist[v as usize] as f64;
            assert!(
                (total - d).abs() < 1e-9,
                "pair ({u},{v}): Σw = {total}, d = {d}"
            );
        }
    }
}

#[test]
fn empty_graph_edge_cases() {
    let g = Graph::empty(5);
    let t = link_traversals(&g, &PathMode::Shortest);
    assert!(t.is_empty());
    assert_eq!(t.sizes(), Vec::<usize>::new());
    assert_eq!(t.total_pairs(), 0);
    assert!(link_values(&g, &PathMode::Shortest).is_empty());
    // Zero-node graph.
    let g0 = Graph::empty(0);
    assert!(link_values(&g0, &PathMode::Shortest).is_empty());
}

#[test]
fn disconnected_graph_edge_cases() {
    // Two components + an isolated node: pairs never span components.
    let g = Graph::from_edges(7, vec![(0, 1), (1, 2), (4, 5), (5, 6)]);
    let t = link_traversals_threads(&g, &PathMode::Shortest, Some(4), None);
    assert_eq!(t.link_count(), 4);
    for link in t.iter_links() {
        for pw in link {
            let left = pw.u <= 2 && pw.v <= 2;
            let right = (4..=6).contains(&pw.u) && (4..=6).contains(&pw.v);
            assert!(left || right, "cross-component pair ({}, {})", pw.u, pw.v);
        }
    }
    // Flow conservation still holds within components.
    let values = link_values(&g, &PathMode::Shortest);
    assert_eq!(values.len(), 4);
    assert!(values.iter().all(|&v| v > 0.0));
    assert_thread_invariance(&g, &PathMode::Shortest);
}
