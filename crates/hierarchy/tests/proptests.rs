//! Property-based tests for the hierarchy analysis: conservation laws of
//! traversal sets and sanity of the cover values, over arbitrary
//! connected graphs.

use proptest::prelude::*;
use topogen_graph::bfs::distances;
use topogen_graph::{Graph, NodeId};
use topogen_hierarchy::cover::{covers_all, traversal_node_weights, weighted_vertex_cover};
use topogen_hierarchy::linkvalue::{link_value_stats, link_values, PathMode};
use topogen_hierarchy::traversal::link_traversals;

fn arb_connected() -> impl Strategy<Value = Graph> {
    (3usize..22, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(((next() % v) as NodeId, v as NodeId));
        }
        for _ in 0..n / 2 {
            let u = (next() % n) as NodeId;
            let v = (next() % n) as NodeId;
            if u != v {
                edges.push((u, v));
            }
        }
        Graph::from_edges(n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_link_carries_its_own_pair(g in arb_connected()) {
        // An edge (a, b) always lies on the shortest path between a and
        // b themselves (weight 1 unless split with an equal-cost path —
        // impossible for adjacent nodes). So no traversal set is empty.
        let t = link_traversals(&g, &PathMode::Shortest);
        for (idx, link) in t.iter_links().enumerate() {
            let e = g.edges()[idx];
            let own = link.iter().find(|p| p.u == e.a && p.v == e.b);
            prop_assert!(own.is_some(), "link {e} missing its own pair");
            prop_assert!((own.unwrap().w - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn traversal_conservation(g in arb_connected()) {
        // Σ_links w(u,v,l) = d(u,v) for every pair.
        let t = link_traversals(&g, &PathMode::Shortest);
        let mut acc: std::collections::HashMap<(NodeId, NodeId), f64> = Default::default();
        for link in t.iter_links() {
            for p in link {
                *acc.entry((p.u, p.v)).or_insert(0.0) += p.w;
            }
        }
        for ((u, v), total) in acc {
            let d = distances(&g, u)[v as usize] as f64;
            prop_assert!((total - d).abs() < 1e-6);
        }
    }

    #[test]
    fn covers_are_covers(g in arb_connected()) {
        let t = link_traversals(&g, &PathMode::Shortest);
        for link in t.iter_links() {
            let w = traversal_node_weights(link);
            let (value, cover) = weighted_vertex_cover(link, &w);
            prop_assert!(covers_all(link, &cover));
            prop_assert!(value >= 0.0);
            // Cover value bounded by total node weight.
            let total: f64 = w.total();
            prop_assert!(value <= total + 1e-9);
        }
    }

    #[test]
    fn stats_consistent(g in arb_connected()) {
        let values = link_values(&g, &PathMode::Shortest);
        let s = link_value_stats(&values);
        prop_assert!(s.median <= s.max + 1e-12);
        prop_assert!(s.frac_above_005 >= s.frac_above_05);
        prop_assert!(values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn bridge_links_dominate_their_side(g in arb_connected()) {
        // The heaviest link value is at least the heaviest single-pair
        // contribution (1/n, from the link's own endpoints cover).
        let values = link_values(&g, &PathMode::Shortest);
        if !values.is_empty() {
            let max = values.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(max >= 0.99 / (2.0 * g.node_count() as f64));
        }
    }
}
