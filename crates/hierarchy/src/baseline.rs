//! Reference implementation of the §5 link-value pipeline: fully
//! serial, per-pair `HashMap` accumulation, `Vec<Vec<PairWeight>>`
//! traversal sets, `HashMap`-keyed node weights.
//!
//! This is the pre-arena engine, retained verbatim for two jobs:
//!
//! * **correctness oracle** — the equivalence tests assert the parallel
//!   arena engine of [`crate::traversal`] / [`crate::cover`] reproduces
//!   these results bit-for-bit (every floating-point operation happens
//!   in the same order in both);
//! * **bench baseline** — `bench_hierarchy` measures the arena engine's
//!   speedup against this code and records it in `BENCH_hierarchy.json`.
//!
//! Do not use it for real workloads: it makes millions of small
//! allocations (one map per pair, one `Vec` per link) and runs on one
//! core.

use crate::cover::covers_all;
use crate::dag::PathDag;
use crate::linkvalue::PathMode;
use crate::traversal::PairWeight;
use std::collections::HashMap;
use topogen_graph::{Graph, NodeId, UNREACHED};

/// Serial traversal sets as per-link vectors (the pre-arena layout).
pub fn link_traversals_ref(g: &Graph, mode: &PathMode<'_>) -> Vec<Vec<PairWeight>> {
    let n = g.node_count();
    let m = g.edge_count();
    let mut per_link: Vec<Vec<PairWeight>> = vec![Vec::new(); m];
    let mut frac: Vec<f64> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    for u in 0..n as NodeId {
        let dag = match mode {
            PathMode::Shortest => PathDag::plain(g, u),
            PathMode::Policy(ann) => PathDag::policy(g, ann, u),
        };
        frac.clear();
        frac.resize(dag.state_count(), 0.0);
        for v in (u + 1)..n as NodeId {
            if dag.node_dist[v as usize] == UNREACHED || dag.node_dist[v as usize] == 0 {
                continue;
            }
            accumulate_pair_ref(g, &dag, u, v, &mut frac, &mut touched, &mut per_link);
        }
    }
    per_link
}

/// Backward accumulation for one (source, target) pair, aggregating
/// per-link weights in a per-pair map (the allocation pattern the arena
/// engine eliminates).
fn accumulate_pair_ref(
    g: &Graph,
    dag: &PathDag,
    u: NodeId,
    v: NodeId,
    frac: &mut [f64],
    touched: &mut Vec<u32>,
    per_link: &mut [Vec<PairWeight>],
) {
    let terminals = dag.terminal_states(v);
    let sigma_tot: f64 = terminals.iter().map(|&s| dag.sigma[s as usize]).sum();
    if sigma_tot <= 0.0 {
        return;
    }
    touched.clear();
    for &s in &terminals {
        frac[s as usize] = dag.sigma[s as usize] / sigma_tot;
        touched.push(s);
    }
    let mut i = 0usize;
    let mut link_acc: HashMap<usize, f64> = Default::default();
    while i < touched.len() {
        let s = touched[i];
        i += 1;
        let fs = frac[s as usize];
        if fs <= 0.0 {
            continue;
        }
        let node_s = dag.node_of[s as usize];
        for &p in &dag.preds[s as usize] {
            let share = fs * dag.sigma[p as usize] / dag.sigma[s as usize];
            let node_p = dag.node_of[p as usize];
            if node_p != node_s {
                let idx = g
                    .edge_index(node_p, node_s)
                    .expect("DAG edge projects to a graph edge");
                *link_acc.entry(idx).or_insert(0.0) += share;
            }
            if frac[p as usize] == 0.0 {
                touched.push(p);
            }
            frac[p as usize] += share;
        }
    }
    for &s in touched.iter() {
        frac[s as usize] = 0.0;
    }
    for (idx, w) in link_acc {
        per_link[idx].push(PairWeight { u, v, w });
    }
}

/// Serial link value of one traversal set, with `HashMap`-keyed node
/// weights and the same primal-dual cover as the compact engine. The
/// cover value is summed in ascending node-id order so the result
/// matches [`crate::cover::link_value`] exactly.
pub fn link_value_ref(pairs: &[PairWeight]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mut sum: HashMap<NodeId, (f64, usize)> = HashMap::new();
    for p in pairs {
        let e = sum.entry(p.u).or_insert((0.0, 0));
        e.0 += p.w;
        e.1 += 1;
        let e = sum.entry(p.v).or_insert((0.0, 0));
        e.0 += p.w;
        e.1 += 1;
    }
    let weights: HashMap<NodeId, f64> = sum
        .into_iter()
        .map(|(x, (s, c))| (x, s / c as f64))
        .collect();
    let mut residual: HashMap<NodeId, f64> = weights.clone();
    let tight = |residual: &HashMap<NodeId, f64>, x: NodeId| residual[&x] <= 1e-12;
    for p in pairs {
        if p.u == p.v {
            continue;
        }
        if tight(&residual, p.u) || tight(&residual, p.v) {
            continue;
        }
        let eps = residual[&p.u].min(residual[&p.v]);
        *residual.get_mut(&p.u).unwrap() -= eps;
        *residual.get_mut(&p.v).unwrap() -= eps;
    }
    let mut cover: Vec<NodeId> = weights
        .keys()
        .copied()
        .filter(|&x| residual[&x] <= 1e-12)
        .collect();
    cover.sort_unstable();
    debug_assert!(covers_all(pairs, &cover));
    cover.iter().map(|x| weights[x]).sum()
}

/// Serial end-to-end link values (the pre-arena pipeline): serial
/// traversal sets, serial covers, normalized by node count.
pub fn link_values_ref(g: &Graph, mode: &PathMode<'_>) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let per_link = link_traversals_ref(g, mode);
    per_link
        .iter()
        .map(|pairs| link_value_ref(pairs) / n as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_matches_paper_example() {
        // 0-1-2 path: middle-free; both links carry 2 pairs.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let t = link_traversals_ref(&g, &PathMode::Shortest);
        assert_eq!(t.iter().map(Vec::len).collect::<Vec<_>>(), vec![2, 2]);
        let v = link_values_ref(&g, &PathMode::Shortest);
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn ref_empty_graph() {
        let g = Graph::empty(4);
        assert!(link_traversals_ref(&g, &PathMode::Shortest).is_empty());
        assert!(link_values_ref(&g, &PathMode::Shortest).is_empty());
    }
}
