//! End-to-end link values and their rank distributions (Figures 3 & 4).

use crate::cover::link_value;
use crate::traversal::{link_traversals_threads, PairWeight};
use topogen_graph::Graph;
use topogen_par::{par_map_threads, Instrument};
use topogen_policy::rel::AsAnnotations;

/// Which path notion defines the traversal sets.
pub enum PathMode<'a> {
    /// Plain shortest paths (all generated/canonical networks).
    Shortest,
    /// Valley-free policy paths (the measured AS/RL graphs with policy,
    /// §5: "for the AS and RL topologies, we use the simple policy model
    /// ... to evaluate link values using policy-constrained paths").
    Policy(&'a AsAnnotations),
}

/// Normalized link values: for each link (indexed as in
/// [`Graph::edges`]) the weighted-vertex-cover value of its traversal
/// set, divided by the node count (the paper's y-axis normalization).
///
/// ```
/// use topogen_graph::Graph;
/// use topogen_hierarchy::linkvalue::{link_values, PathMode};
///
/// // A 6-node path: the middle link carries every left-right pair, the
/// // end links only their leaf's traffic — a strict "backbone".
/// let g = Graph::from_edges(6, (0..5).map(|i| (i, i + 1)));
/// let v = link_values(&g, &PathMode::Shortest);
/// let middle = g.edge_index(2, 3).unwrap();
/// let end = g.edge_index(0, 1).unwrap();
/// assert!(v[middle] > 2.0 * v[end]);
/// ```
pub fn link_values(g: &Graph, mode: &PathMode<'_>) -> Vec<f64> {
    link_values_threads(g, mode, None, None)
}

/// [`link_values`] with an explicit worker count (`None` =
/// `available_parallelism`, `Some(1)` = fully serial) and an optional
/// instrumentation sink. Both pipeline stages — the per-source traversal
/// accumulation and the per-link weighted covers — run on the shared
/// `topogen-par` map, and both are bit-identical at any thread count.
/// The sink receives the `hier-traversal` / `hier-cover` phase times
/// plus the DAG-state, pair, and arena-byte counters.
pub fn link_values_threads(
    g: &Graph,
    mode: &PathMode<'_>,
    threads: Option<usize>,
    ins: Option<&Instrument>,
) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let t = link_traversals_threads(g, mode, threads, ins);
    // Per-link covers are independent: spread them over cores.
    let start = std::time::Instant::now();
    let _cover_span = topogen_par::trace::span("hier-cover");
    let links: Vec<&[PairWeight]> = t.iter_links().collect();
    let values = par_map_threads(&links, threads, |pairs| link_value(pairs) / n as f64);
    if let Some(ins) = ins {
        ins.add_phase("hier-cover", start.elapsed());
    }
    values
}

/// One point of the link-value rank distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RankPoint {
    /// Rank normalized by the number of links, in (0, 1]; rank 1 = the
    /// highest-valued link (the paper plots "a higher rank indicating a
    /// higher value" with the x-axis normalized by link count).
    pub normalized_rank: f64,
    /// Normalized link value.
    pub value: f64,
}

/// The link-value rank distribution of Figures 3/4: values sorted
/// descending, x = rank / #links.
pub fn normalized_rank_distribution(values: &[f64]) -> Vec<RankPoint> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let m = sorted.len().max(1) as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| RankPoint {
            normalized_rank: (i + 1) as f64 / m,
            value: v,
        })
        .collect()
}

/// Summary statistics of a link-value distribution, the inputs to the
/// strict/moderate/loose classification.
#[derive(Clone, Copy, Debug)]
pub struct LinkValueStats {
    /// Highest normalized link value.
    pub max: f64,
    /// Median normalized link value.
    pub median: f64,
    /// Fraction of links with value above 0.005 (the paper's cut in
    /// §5.1: "only about 10% have link values above 0.005").
    pub frac_above_005: f64,
    /// Fraction of links with value above 0.05 ("almost 70% of the links
    /// in these \[loose\] graphs have link values about 0.05").
    pub frac_above_05: f64,
}

/// Compute the summary statistics.
pub fn link_value_stats(values: &[f64]) -> LinkValueStats {
    if values.is_empty() {
        return LinkValueStats {
            max: 0.0,
            median: 0.0,
            frac_above_005: 0.0,
            frac_above_05: 0.0,
        };
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let m = sorted.len();
    LinkValueStats {
        max: sorted[m - 1],
        median: sorted[m / 2],
        frac_above_005: sorted.iter().filter(|&&v| v > 0.005).count() as f64 / m as f64,
        frac_above_05: sorted.iter().filter(|&&v| v > 0.05).count() as f64 / m as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_generators::canonical::{kary_tree, mesh};

    #[test]
    fn tree_top_links_are_heavy() {
        // Ternary tree: the root's links each separate a third of the
        // graph; their normalized values approach 1/3 (§5.1: "For the
        // Tree ... some links have link values above 0.3").
        let g = kary_tree(3, 4); // 121 nodes
        let values = link_values(&g, &PathMode::Shortest);
        let stats = link_value_stats(&values);
        assert!(stats.max > 0.25, "tree max {}", stats.max);
        // And the distribution falls off fast: the median link is a
        // deep-tree link covering few nodes.
        assert!(stats.median < 0.1 * stats.max, "median {}", stats.median);
    }

    #[test]
    fn mesh_distribution_is_flat() {
        let g = mesh(8, 8);
        let values = link_values(&g, &PathMode::Shortest);
        let stats = link_value_stats(&values);
        // Loose hierarchy: median within an order of magnitude of max.
        assert!(
            stats.median > 0.15 * stats.max,
            "mesh median {} vs max {}",
            stats.median,
            stats.max
        );
    }

    #[test]
    fn rank_distribution_shape() {
        let values = vec![0.5, 0.1, 0.3];
        let r = normalized_rank_distribution(&values);
        assert_eq!(r.len(), 3);
        assert!((r[0].value - 0.5).abs() < 1e-12);
        assert!((r[0].normalized_rank - 1.0 / 3.0).abs() < 1e-12);
        assert!((r[2].normalized_rank - 1.0).abs() < 1e-12);
        assert!(r.windows(2).all(|w| w[0].value >= w[1].value));
    }

    #[test]
    fn stats_on_empty() {
        let s = link_value_stats(&[]);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn access_links_have_small_values() {
        // Star: every link is an access link with cover {leaf}: value
        // 1/n each.
        let g = Graph::from_edges(6, (1..6).map(|i| (0, i)));
        let values = link_values(&g, &PathMode::Shortest);
        for v in values {
            assert!(v <= 2.0 / 6.0 + 1e-9, "access value {v}");
        }
    }
}
