//! Weighted vertex cover of a traversal set (§5, footnote 27).
//!
//! The traversal set of a link forms a graph over the nodes appearing in
//! its pairs; each node `x` carries weight `W(x) = avg w(x, v, l)` over
//! the pairs containing `x`. The link's value is the minimum weighted
//! vertex cover of the pair set — approximated with the classical
//! primal-dual (local-ratio) algorithm \[30\], a 2-approximation.
//!
//! The hot loops run on compact index-remapped vectors: the (few) nodes
//! appearing in one link's traversal set are collected into a sorted id
//! table ([`NodeWeights`]) and every per-node quantity (weight sums,
//! primal-dual residuals) lives in a dense vector parallel to it — no
//! hash maps anywhere on the link-value path.

use crate::traversal::PairWeight;
use topogen_graph::NodeId;

/// Node weights `W(x, l)` for one link's traversal set, remapped to a
/// compact index space: `ids` holds the sorted distinct endpoints and
/// `weights[i]` the average pair weight of `ids[i]`.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeWeights {
    ids: Vec<NodeId>,
    weights: Vec<f64>,
}

impl NodeWeights {
    /// Build from explicit `(id, weight)` pairs (ids need not be
    /// sorted; duplicates are rejected). Mostly for tests and callers
    /// supplying custom weightings.
    pub fn from_pairs_list(mut entries: Vec<(NodeId, f64)>) -> NodeWeights {
        entries.sort_by_key(|&(x, _)| x);
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate node id in weight list"
        );
        NodeWeights {
            ids: entries.iter().map(|&(x, _)| x).collect(),
            weights: entries.iter().map(|&(_, w)| w).collect(),
        }
    }

    /// The sorted distinct node ids.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Weights parallel to [`ids`](Self::ids).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the traversal set was empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Weight of node `x`, if it appears in the set.
    pub fn get(&self, x: NodeId) -> Option<f64> {
        self.index_of(x).map(|i| self.weights[i])
    }

    /// Total weight over all nodes.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Compact index of node `x`.
    fn index_of(&self, x: NodeId) -> Option<usize> {
        self.ids.binary_search(&x).ok()
    }
}

/// Node weights `W(x, l)` for one link's traversal set: the average
/// pair weight over the pairs containing each node.
pub fn traversal_node_weights(pairs: &[PairWeight]) -> NodeWeights {
    node_weights_indexed(pairs).0
}

/// [`traversal_node_weights`] plus each pair's endpoints remapped to
/// compact indices — the id-table lookups happen once here and are
/// shared with the cover loop by [`link_value`].
fn node_weights_indexed(pairs: &[PairWeight]) -> (NodeWeights, Vec<(u32, u32)>) {
    let mut ids: Vec<NodeId> = Vec::with_capacity(2 * pairs.len());
    for p in pairs {
        ids.push(p.u);
        ids.push(p.v);
    }
    ids.sort_unstable();
    ids.dedup();
    let mut sums = vec![0.0f64; ids.len()];
    let mut counts = vec![0u32; ids.len()];
    let mut idx = Vec::with_capacity(pairs.len());
    for p in pairs {
        let iu = ids.binary_search(&p.u).expect("endpoint in id table");
        sums[iu] += p.w;
        counts[iu] += 1;
        let iv = ids.binary_search(&p.v).expect("endpoint in id table");
        sums[iv] += p.w;
        counts[iv] += 1;
        idx.push((iu as u32, iv as u32));
    }
    let weights = sums
        .into_iter()
        .zip(&counts)
        .map(|(s, &c)| s / c as f64)
        .collect();
    (NodeWeights { ids, weights }, idx)
}

/// Primal-dual 2-approximate minimum weighted vertex cover of the pair
/// set, given node weights. Returns `(value, cover)` where `value` is
/// the total weight of the chosen nodes; the cover is listed in
/// ascending node-id order (and `value` summed in that order, so the
/// result is deterministic).
pub fn weighted_vertex_cover(pairs: &[PairWeight], weights: &NodeWeights) -> (f64, Vec<NodeId>) {
    let idx: Vec<(u32, u32)> = pairs
        .iter()
        .map(|p| {
            let iu = weights.index_of(p.u).expect("pair endpoint has a weight");
            let iv = weights.index_of(p.v).expect("pair endpoint has a weight");
            (iu as u32, iv as u32)
        })
        .collect();
    vertex_cover_indexed(&idx, weights)
}

/// The primal-dual loop over pre-remapped endpoint indices.
fn vertex_cover_indexed(idx: &[(u32, u32)], weights: &NodeWeights) -> (f64, Vec<NodeId>) {
    let mut residual: Vec<f64> = weights.weights.clone();
    const TIGHT: f64 = 1e-12;
    for &(iu, iv) in idx {
        if iu == iv {
            continue;
        }
        let (iu, iv) = (iu as usize, iv as usize);
        if residual[iu] <= TIGHT || residual[iv] <= TIGHT {
            continue; // already covered
        }
        let eps = residual[iu].min(residual[iv]);
        residual[iu] -= eps;
        residual[iv] -= eps;
    }
    let mut value = 0.0;
    let mut cover = Vec::new();
    for (i, &r) in residual.iter().enumerate() {
        if r <= TIGHT {
            value += weights.weights[i];
            cover.push(weights.ids[i]);
        }
    }
    (value, cover)
}

/// End-to-end value of one link: node weights from its traversal set,
/// then the weighted cover value. Zero for an empty traversal set. The
/// endpoint→index remap is computed once and shared by both stages.
pub fn link_value(pairs: &[PairWeight]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let (w, idx) = node_weights_indexed(pairs);
    vertex_cover_indexed(&idx, &w).0
}

/// Validation helper: does `cover` hit every pair?
pub fn covers_all(pairs: &[PairWeight], cover: &[NodeId]) -> bool {
    let mut set: Vec<NodeId> = cover.to_vec();
    set.sort_unstable();
    pairs
        .iter()
        .all(|p| set.binary_search(&p.u).is_ok() || set.binary_search(&p.v).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pw(u: NodeId, v: NodeId, w: f64) -> PairWeight {
        PairWeight { u, v, w }
    }

    #[test]
    fn access_link_cover_is_leaf() {
        // Star access link: pairs (leaf, x) for all x; leaf weight 1.
        let pairs: Vec<PairWeight> = (1..5).map(|v| pw(0, v, 1.0)).collect();
        let w = traversal_node_weights(&pairs);
        assert!((w.get(0).unwrap() - 1.0).abs() < 1e-12);
        let (value, cover) = weighted_vertex_cover(&pairs, &w);
        assert!(covers_all(&pairs, &cover));
        // The singleton {leaf} covers everything at weight 1 — the
        // paper's "access links have a vertex cover of 1".
        assert!(value <= 2.0, "value {value} (OPT = 1, 2-approx bound 2)");
    }

    #[test]
    fn bipartite_product_cover() {
        // Pairs = {0,1} × {2,3,4}, all weight 1: OPT covers {0,1} = 2.
        let mut pairs = Vec::new();
        for u in 0..2 {
            for v in 2..5 {
                pairs.push(pw(u, v, 1.0));
            }
        }
        let w = traversal_node_weights(&pairs);
        let (value, cover) = weighted_vertex_cover(&pairs, &w);
        assert!(covers_all(&pairs, &cover));
        assert!(value <= 4.0 + 1e-9, "value {value} (OPT 2)");
        assert!(value >= 2.0 - 1e-9);
    }

    #[test]
    fn empty_traversal_zero() {
        assert_eq!(link_value(&[]), 0.0);
    }

    #[test]
    fn single_pair() {
        let pairs = vec![pw(3, 7, 0.5)];
        let v = link_value(&pairs);
        // Each endpoint has weight 0.5; cover takes (at least) one.
        assert!((v - 0.5).abs() < 1e-9 || (v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_approximation_bound_on_weighted_case() {
        // Triangle of pairs with distinct weights: OPT picks the two
        // cheapest? Pairs (0,1),(1,2),(0,2) — any cover needs 2 nodes.
        let pairs = vec![pw(0, 1, 1.0), pw(1, 2, 1.0), pw(0, 2, 1.0)];
        let w = NodeWeights::from_pairs_list(vec![(0, 1.0), (1, 0.1), (2, 1.0)]);
        let (value, cover) = weighted_vertex_cover(&pairs, &w);
        assert!(covers_all(&pairs, &cover));
        // OPT = {1, 0} or {1, 2} = 1.1; 2-approx allows ≤ 2.2.
        assert!(value <= 2.2 + 1e-9, "value {value}");
    }

    #[test]
    fn cover_value_monotone_in_pairs() {
        // More pairs can only increase (or keep) the cover value.
        let small = vec![pw(0, 1, 1.0)];
        let big = vec![pw(0, 1, 1.0), pw(2, 3, 1.0), pw(4, 5, 1.0)];
        assert!(link_value(&big) >= link_value(&small) - 1e-9);
    }

    #[test]
    fn compact_table_is_sorted_and_queryable() {
        let pairs = vec![pw(9, 2, 0.5), pw(2, 4, 1.0)];
        let w = traversal_node_weights(&pairs);
        assert_eq!(w.ids(), &[2, 4, 9]);
        assert_eq!(w.len(), 3);
        // Node 2 appears in both pairs: avg (0.5 + 1.0) / 2.
        assert!((w.get(2).unwrap() - 0.75).abs() < 1e-12);
        assert!(w.get(3).is_none());
        assert!((w.total() - (0.75 + 1.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn duplicate_ids_rejected() {
        let _ = NodeWeights::from_pairs_list(vec![(1, 0.5), (1, 0.7)]);
    }
}
