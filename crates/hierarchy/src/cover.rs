//! Weighted vertex cover of a traversal set (§5, footnote 27).
//!
//! The traversal set of a link forms a graph over the nodes appearing in
//! its pairs; each node `x` carries weight `W(x) = avg w(x, v, l)` over
//! the pairs containing `x`. The link's value is the minimum weighted
//! vertex cover of the pair set — approximated with the classical
//! primal-dual (local-ratio) algorithm \[30\], a 2-approximation.

use crate::traversal::PairWeight;
use std::collections::HashMap;
use topogen_graph::NodeId;

/// Node weights `W(x, l)` for one link's traversal set: the average
/// pair weight over the pairs containing each node.
pub fn traversal_node_weights(pairs: &[PairWeight]) -> HashMap<NodeId, f64> {
    let mut sum: HashMap<NodeId, (f64, usize)> = HashMap::new();
    for p in pairs {
        let e = sum.entry(p.u).or_insert((0.0, 0));
        e.0 += p.w;
        e.1 += 1;
        let e = sum.entry(p.v).or_insert((0.0, 0));
        e.0 += p.w;
        e.1 += 1;
    }
    sum.into_iter()
        .map(|(x, (s, c))| (x, s / c as f64))
        .collect()
}

/// Primal-dual 2-approximate minimum weighted vertex cover of the pair
/// set, given node weights. Returns `(value, cover)` where `value` is
/// the total weight of the chosen nodes.
pub fn weighted_vertex_cover(
    pairs: &[PairWeight],
    weights: &HashMap<NodeId, f64>,
) -> (f64, Vec<NodeId>) {
    let mut residual: HashMap<NodeId, f64> = weights.clone();
    let tight = |residual: &HashMap<NodeId, f64>, x: NodeId| residual[&x] <= 1e-12;
    for p in pairs {
        if p.u == p.v {
            continue;
        }
        if tight(&residual, p.u) || tight(&residual, p.v) {
            continue; // already covered
        }
        let eps = residual[&p.u].min(residual[&p.v]);
        *residual.get_mut(&p.u).unwrap() -= eps;
        *residual.get_mut(&p.v).unwrap() -= eps;
    }
    let cover: Vec<NodeId> = weights
        .keys()
        .copied()
        .filter(|&x| residual[&x] <= 1e-12)
        .collect();
    let value: f64 = cover.iter().map(|x| weights[x]).sum();
    (value, cover)
}

/// End-to-end value of one link: node weights from its traversal set,
/// then the weighted cover value. Zero for an empty traversal set.
pub fn link_value(pairs: &[PairWeight]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let w = traversal_node_weights(pairs);
    weighted_vertex_cover(pairs, &w).0
}

/// Validation helper: does `cover` hit every pair?
pub fn covers_all(pairs: &[PairWeight], cover: &[NodeId]) -> bool {
    let set: std::collections::HashSet<NodeId> = cover.iter().copied().collect();
    pairs
        .iter()
        .all(|p| set.contains(&p.u) || set.contains(&p.v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pw(u: NodeId, v: NodeId, w: f64) -> PairWeight {
        PairWeight { u, v, w }
    }

    #[test]
    fn access_link_cover_is_leaf() {
        // Star access link: pairs (leaf, x) for all x; leaf weight 1.
        let pairs: Vec<PairWeight> = (1..5).map(|v| pw(0, v, 1.0)).collect();
        let w = traversal_node_weights(&pairs);
        assert!((w[&0] - 1.0).abs() < 1e-12);
        let (value, cover) = weighted_vertex_cover(&pairs, &w);
        assert!(covers_all(&pairs, &cover));
        // The singleton {leaf} covers everything at weight 1 — the
        // paper's "access links have a vertex cover of 1".
        assert!(value <= 2.0, "value {value} (OPT = 1, 2-approx bound 2)");
    }

    #[test]
    fn bipartite_product_cover() {
        // Pairs = {0,1} × {2,3,4}, all weight 1: OPT covers {0,1} = 2.
        let mut pairs = Vec::new();
        for u in 0..2 {
            for v in 2..5 {
                pairs.push(pw(u, v, 1.0));
            }
        }
        let w = traversal_node_weights(&pairs);
        let (value, cover) = weighted_vertex_cover(&pairs, &w);
        assert!(covers_all(&pairs, &cover));
        assert!(value <= 4.0 + 1e-9, "value {value} (OPT 2)");
        assert!(value >= 2.0 - 1e-9);
    }

    #[test]
    fn empty_traversal_zero() {
        assert_eq!(link_value(&[]), 0.0);
    }

    #[test]
    fn single_pair() {
        let pairs = vec![pw(3, 7, 0.5)];
        let v = link_value(&pairs);
        // Each endpoint has weight 0.5; cover takes (at least) one.
        assert!((v - 0.5).abs() < 1e-9 || (v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_approximation_bound_on_weighted_case() {
        // Triangle of pairs with distinct weights: OPT picks the two
        // cheapest? Pairs (0,1),(1,2),(0,2) — any cover needs 2 nodes.
        let pairs = vec![pw(0, 1, 1.0), pw(1, 2, 1.0), pw(0, 2, 1.0)];
        let w: HashMap<NodeId, f64> = [(0, 1.0), (1, 0.1), (2, 1.0)].into_iter().collect();
        let (value, cover) = weighted_vertex_cover(&pairs, &w);
        assert!(covers_all(&pairs, &cover));
        // OPT = {1, 0} or {1, 2} = 1.1; 2-approx allows ≤ 2.2.
        assert!(value <= 2.2 + 1e-9, "value {value}");
    }

    #[test]
    fn cover_value_monotone_in_pairs() {
        // More pairs can only increase (or keep) the cover value.
        let small = vec![pw(0, 1, 1.0)];
        let big = vec![pw(0, 1, 1.0), pw(2, 3, 1.0), pw(4, 5, 1.0)];
        assert!(link_value(&big) >= link_value(&small) - 1e-9);
    }
}
