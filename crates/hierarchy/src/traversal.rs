//! Traversal sets: which node pairs use which link, with equal-cost
//! splitting weights (§5, footnote 27).
//!
//! For each unordered pair `(u, v)` and link `l`, the weight `w(u, v, l)`
//! is the fraction of the equal-cost shortest paths between `u` and `v`
//! that traverse `l`. We compute them with one DAG per source and a
//! per-target backward accumulation (the same bookkeeping as Brandes'
//! betweenness, but keeping per-pair resolution because the vertex cover
//! of §5 needs the pair structure, not just totals).

use crate::dag::PathDag;
use crate::linkvalue::PathMode;
use topogen_graph::{Graph, NodeId, UNREACHED};

/// One traversal-set entry: pair `(u, v)` crosses the link with weight
/// `w` (0 < w ≤ 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairWeight {
    /// Smaller pair endpoint.
    pub u: NodeId,
    /// Larger pair endpoint.
    pub v: NodeId,
    /// Fraction of the pair's equal-cost paths crossing the link.
    pub w: f64,
}

/// The traversal sets of every link, indexed like [`Graph::edges`].
#[derive(Clone, Debug)]
pub struct LinkTraversals {
    /// Per link, the pair weights.
    pub per_link: Vec<Vec<PairWeight>>,
}

impl LinkTraversals {
    /// Traversal-set size of each link (number of pairs).
    pub fn sizes(&self) -> Vec<usize> {
        self.per_link.iter().map(|p| p.len()).collect()
    }
}

/// Compute all traversal sets under the given path mode. Pairs are
/// unordered (`u < v`); each link's list accumulates every pair whose
/// shortest-path DAG crosses it.
///
/// Cost: O(Σ_pairs |states on the pair's shortest paths|) time, and the
/// output's total size is Σ_pairs (path length) — keep graphs at ≲ 2,000
/// nodes (the paper similarly computed link values on the RL *core*,
/// footnote 29).
pub fn link_traversals(g: &Graph, mode: &PathMode<'_>) -> LinkTraversals {
    let n = g.node_count();
    let m = g.edge_count();
    let mut per_link: Vec<Vec<PairWeight>> = vec![Vec::new(); m];
    // Scratch buffers reused across targets.
    let mut frac: Vec<f64> = Vec::new();
    let mut touched: Vec<u32> = Vec::new();
    for u in 0..n as NodeId {
        let dag = match mode {
            PathMode::Shortest => PathDag::plain(g, u),
            PathMode::Policy(ann) => PathDag::policy(g, ann, u),
        };
        frac.clear();
        frac.resize(dag.state_count(), 0.0);
        for v in (u + 1)..n as NodeId {
            if dag.node_dist[v as usize] == UNREACHED || dag.node_dist[v as usize] == 0 {
                continue;
            }
            accumulate_pair(g, &dag, u, v, &mut frac, &mut touched, &mut per_link);
        }
    }
    LinkTraversals { per_link }
}

/// Backward accumulation for one (source, target) pair: distribute the
/// unit of traffic over the shortest-path DAG, pushing per-link weights.
fn accumulate_pair(
    g: &Graph,
    dag: &PathDag,
    u: NodeId,
    v: NodeId,
    frac: &mut [f64],
    touched: &mut Vec<u32>,
    per_link: &mut [Vec<PairWeight>],
) {
    let terminals = dag.terminal_states(v);
    let sigma_tot: f64 = terminals.iter().map(|&s| dag.sigma[s as usize]).sum();
    if sigma_tot <= 0.0 {
        return;
    }
    touched.clear();
    for &s in &terminals {
        frac[s as usize] = dag.sigma[s as usize] / sigma_tot;
        touched.push(s);
    }
    // Process states in decreasing distance order. Distances decrease by
    // exactly 1 along preds, so a simple bucket walk works: sort touched
    // lazily as we append (preds always have smaller dist, and we push
    // them after their successors — a queue ordered by discovery works
    // because all terminals share one distance and each step goes one
    // level down).
    let mut i = 0usize;
    // Per-pair link weights can receive multiple contributions (policy
    // states); aggregate in a small map.
    let mut link_acc: std::collections::HashMap<usize, f64> = Default::default();
    while i < touched.len() {
        let s = touched[i];
        i += 1;
        let fs = frac[s as usize];
        if fs <= 0.0 {
            continue;
        }
        let node_s = dag.node_of[s as usize];
        for &p in &dag.preds[s as usize] {
            let share = fs * dag.sigma[p as usize] / dag.sigma[s as usize];
            let node_p = dag.node_of[p as usize];
            if node_p != node_s {
                let idx = g
                    .edge_index(node_p, node_s)
                    .expect("DAG edge projects to a graph edge");
                *link_acc.entry(idx).or_insert(0.0) += share;
            }
            if frac[p as usize] == 0.0 {
                touched.push(p);
            }
            frac[p as usize] += share;
        }
    }
    for &s in touched.iter() {
        frac[s as usize] = 0.0;
    }
    for (idx, w) in link_acc {
        per_link[idx].push(PairWeight { u, v, w });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_policy::rel::annotations_from_pairs;

    #[test]
    fn path_graph_traversals() {
        // 0-1-2: link (0,1) carries pairs (0,1),(0,2); link (1,2) carries
        // (1,2),(0,2); all weights 1.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let t = link_traversals(&g, &PathMode::Shortest);
        assert_eq!(t.sizes(), vec![2, 2]);
        for link in &t.per_link {
            for pw in link {
                assert!((pw.w - 1.0).abs() < 1e-12);
                assert!(pw.u < pw.v);
            }
        }
    }

    #[test]
    fn equal_cost_split_on_square() {
        // 4-cycle: pair (0,2) splits 50/50 over the two sides.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let t = link_traversals(&g, &PathMode::Shortest);
        let idx01 = g.edge_index(0, 1).unwrap();
        let pw: Vec<&PairWeight> = t.per_link[idx01]
            .iter()
            .filter(|p| p.u == 0 && p.v == 2)
            .collect();
        assert_eq!(pw.len(), 1);
        assert!((pw[0].w - 0.5).abs() < 1e-12);
        // Adjacent pair (0,1) uses the link fully.
        let adj: Vec<&PairWeight> = t.per_link[idx01]
            .iter()
            .filter(|p| p.u == 0 && p.v == 1)
            .collect();
        assert!((adj[0].w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn access_link_carries_n_minus_1_pairs() {
        // Star: every spoke is an access link with traversal set size
        // n-1 (paper's observation in §5).
        let g = Graph::from_edges(5, (1..5).map(|i| (0, i)));
        let t = link_traversals(&g, &PathMode::Shortest);
        for s in t.sizes() {
            assert_eq!(s, 4);
        }
    }

    #[test]
    fn weights_sum_to_path_length() {
        // Σ_l w(u,v,l) = d(u,v) for every pair (flow conservation).
        let g = Graph::from_edges(
            6,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)],
        );
        let t = link_traversals(&g, &PathMode::Shortest);
        let mut per_pair: std::collections::HashMap<(NodeId, NodeId), f64> = Default::default();
        for link in &t.per_link {
            for pw in link {
                *per_pair.entry((pw.u, pw.v)).or_insert(0.0) += pw.w;
            }
        }
        for ((u, v), total) in per_pair {
            let d = topogen_graph::bfs::distances(&g, u)[v as usize] as f64;
            assert!(
                (total - d).abs() < 1e-9,
                "pair ({u},{v}): Σw = {total}, d = {d}"
            );
        }
    }

    #[test]
    fn policy_excludes_valley_pairs() {
        // 0 prov 1, 2 prov 1: pair (0,2) is unroutable; link loads drop.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let t = link_traversals(&g, &PathMode::Policy(&ann));
        // Each link carries only its adjacent pair.
        assert_eq!(t.sizes(), vec![1, 1]);
    }

    #[test]
    fn policy_concentrates_usage() {
        // Square with a peer shortcut: 0-1 (1 prov 0), 1-2 (1 prov 2),
        // plus 0-2 peer, 2-3 (2 prov 3). Paths from 3: 3→2 up, then peer
        // 2-0 or down 2-1 — but NOT 3→2→0→… anything beyond.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        let ann = annotations_from_pairs(&g, &[(1, 0), (1, 2), (2, 3)], &[(0, 2)], &[]);
        let plain = link_traversals(&g, &PathMode::Shortest);
        let pol = link_traversals(&g, &PathMode::Policy(&ann));
        let total_plain: usize = plain.sizes().iter().sum();
        let total_pol: usize = pol.sizes().iter().sum();
        assert!(total_pol <= total_plain);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        let t = link_traversals(&g, &PathMode::Shortest);
        assert!(t.per_link.is_empty());
    }
}
