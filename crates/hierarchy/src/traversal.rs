//! Traversal sets: which node pairs use which link, with equal-cost
//! splitting weights (§5, footnote 27).
//!
//! For each unordered pair `(u, v)` and link `l`, the weight `w(u, v, l)`
//! is the fraction of the equal-cost shortest paths between `u` and `v`
//! that traverse `l`. We compute them with one DAG per source and a
//! per-target backward accumulation (the same bookkeeping as Brandes'
//! betweenness, but keeping per-pair resolution because the vertex cover
//! of §5 needs the pair structure, not just totals).
//!
//! The engine is parallel and arena-backed: sources are spread over
//! worker threads (each computes its whole DAG plus all of its pairs'
//! accumulations independently), per-pair link weights go through a
//! frontier-local compressed `(link, share)` scratch sized by one pair's
//! path states (not the whole edge set — the former dense epoch-stamped
//! arrays pinned 12·m bytes per worker, which dominated memory at the
//! large/xl tiers), and the per-source contributions are merged in ascending
//! source order into one flat CSR-style arena ([`LinkTraversals`]) — a
//! counting pass, one buffer, one offsets array. Because the merge order
//! is fixed and every floating-point operation happens within a single
//! source's worker, the output is bit-identical at any thread count
//! (the same determinism contract as the shared-ball metrics engine).

use crate::dag::PathDag;
use crate::linkvalue::PathMode;
use topogen_graph::{Graph, NodeId, UNREACHED};
use topogen_par::{par_map_threads, Instrument};

/// One traversal-set entry: pair `(u, v)` crosses the link with weight
/// `w` (0 < w ≤ 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairWeight {
    /// Smaller pair endpoint.
    pub u: NodeId,
    /// Larger pair endpoint.
    pub v: NodeId,
    /// Fraction of the pair's equal-cost paths crossing the link.
    pub w: f64,
}

/// The traversal sets of every link, indexed like [`Graph::edges`],
/// stored as one flat arena: `offsets[l]..offsets[l+1]` slices the
/// shared `pairs` buffer. Replaces the former `Vec<Vec<PairWeight>>`
/// (millions of small allocations on full graphs) with exactly two
/// allocations regardless of graph size.
#[derive(Clone, Debug)]
pub struct LinkTraversals {
    /// `offsets[l]..offsets[l+1]` bounds link `l`'s pairs; length
    /// `link_count + 1`.
    offsets: Vec<usize>,
    /// All pair weights, concatenated per link in ascending
    /// `(u, v)` order within each link.
    pairs: Vec<PairWeight>,
}

impl LinkTraversals {
    /// Number of links (same as [`Graph::edge_count`]).
    pub fn link_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether there are no links at all.
    pub fn is_empty(&self) -> bool {
        self.link_count() == 0
    }

    /// The traversal set of link `l` (indexed as in [`Graph::edges`]).
    pub fn link(&self, l: usize) -> &[PairWeight] {
        &self.pairs[self.offsets[l]..self.offsets[l + 1]]
    }

    /// Iterate over every link's traversal set, in edge-index order.
    pub fn iter_links(&self) -> impl Iterator<Item = &[PairWeight]> {
        self.offsets
            .windows(2)
            .map(move |w| &self.pairs[w[0]..w[1]])
    }

    /// Traversal-set size of each link (number of pairs).
    pub fn sizes(&self) -> Vec<usize> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Total number of (pair, link) entries across all links.
    pub fn total_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Bytes held by the arena (offsets plus the flat pair buffer).
    pub fn arena_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.pairs.len() * std::mem::size_of::<PairWeight>()
    }
}

/// One source's contribution: for each of its pairs' links, the edge
/// index, the target, and the accumulated weight (the source itself is
/// implicit). Entries are emitted in ascending target order.
struct SourceContrib {
    entries: Vec<(u32, NodeId, f64)>,
    /// DAG states visited during the backward accumulations.
    states_visited: u64,
    /// Pairs accumulated (reachable targets above the source).
    pairs: u64,
    /// Peak frontier-local scratch entries held by any single pair's
    /// accumulation (the compressed replacement for the former dense
    /// per-edge arrays).
    scratch_peak: usize,
}

/// Compute all traversal sets under the given path mode. Pairs are
/// unordered (`u < v`); each link's list accumulates every pair whose
/// shortest-path DAG crosses it. Uses every available core; see
/// [`link_traversals_threads`] for explicit control.
///
/// Cost: O(Σ_pairs |states on the pair's shortest paths|) work and the
/// output's total size is Σ_pairs (path length) — the paper restricted
/// this to the RL *core* (footnote 29); the parallel arena engine
/// extends it to full measured graphs.
pub fn link_traversals(g: &Graph, mode: &PathMode<'_>) -> LinkTraversals {
    link_traversals_threads(g, mode, None, None)
}

/// [`link_traversals`] with an explicit worker count (`None` =
/// `available_parallelism`, `Some(1)` = serial) and an optional
/// instrumentation sink receiving the `hier-traversal` phase time plus
/// DAG-state / pair / arena-byte counters.
pub fn link_traversals_threads(
    g: &Graph,
    mode: &PathMode<'_>,
    threads: Option<usize>,
    ins: Option<&Instrument>,
) -> LinkTraversals {
    let start = std::time::Instant::now();
    // Fault site + deadline checkpoint at the phase boundary; both are
    // no-ops unless armed / a deadline is ambient.
    topogen_par::faults::inject("hier", "traversal");
    topogen_par::cancel::checkpoint();
    let _span = topogen_par::trace::span("hier-traversal");
    let n = g.node_count();
    let m = g.edge_count();
    let sources: Vec<NodeId> = (0..n as NodeId).collect();

    // Phase 1 (parallel): one DAG + all pair accumulations per source.
    let contribs: Vec<SourceContrib> =
        par_map_threads(&sources, threads, |&u| source_contrib(g, mode, u));

    // Phase boundary between traversal and merge.
    topogen_par::cancel::checkpoint();

    // Phase 2 (serial merge, ascending source order): counting pass,
    // offsets, then one placement sweep — per link, entries land in
    // ascending (u, v) order, independent of the thread count.
    let _merge_span = topogen_par::trace::span("hier-merge");
    let mut counts = vec![0usize; m];
    for c in &contribs {
        for &(l, _, _) in &c.entries {
            counts[l as usize] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(m + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in &counts {
        acc += c;
        offsets.push(acc);
    }
    let mut pairs = vec![PairWeight { u: 0, v: 0, w: 0.0 }; acc];
    let mut cursor: Vec<usize> = offsets[..m].to_vec();
    for (u, c) in contribs.iter().enumerate() {
        for &(l, v, w) in &c.entries {
            let slot = cursor[l as usize];
            cursor[l as usize] += 1;
            pairs[slot] = PairWeight {
                u: u as NodeId,
                v,
                w,
            };
        }
    }
    let t = LinkTraversals { offsets, pairs };

    if let Some(ins) = ins {
        ins.add_dag_states(contribs.iter().map(|c| c.states_visited).sum());
        ins.add_pairs_accumulated(contribs.iter().map(|c| c.pairs).sum());
        ins.add_arena_bytes(t.arena_bytes() as u64);
        // High-water of the compressed per-pair scratch across all
        // workers — a max over sources, so thread-order free. The former
        // dense scratch pinned 12·m bytes per worker; this is what the
        // perf gate ratchets instead.
        let scratch = contribs.iter().map(|c| c.scratch_peak).max().unwrap_or(0);
        ins.record_scratch_peak((scratch * std::mem::size_of::<(u32, f64)>()) as u64);
        // Also feed the process-wide high-water mark: the run ledger
        // records the largest single arena a unit held, complementing
        // the cumulative byte counter above.
        topogen_par::record_arena_highwater(t.arena_bytes() as u64);
        ins.add_phase("hier-traversal", start.elapsed());
    }
    t
}

/// All of one source's backward accumulations: build the DAG, then for
/// each reachable target `v > u` distribute the unit of traffic and
/// aggregate per-link weights through a frontier-local compressed
/// scratch (see [`accumulate_pair`]).
fn source_contrib(g: &Graph, mode: &PathMode<'_>, u: NodeId) -> SourceContrib {
    let n = g.node_count();
    let dag = match mode {
        PathMode::Shortest => PathDag::plain(g, u),
        PathMode::Policy(ann) => PathDag::policy(g, ann, u),
    };
    // Resolve each DAG edge's graph-edge index once per source instead of
    // binary-searching inside every target's accumulation. `SAME_NODE`
    // marks intra-node policy transitions (no graph edge crossed).
    let pred_edge: Vec<Vec<u32>> = dag
        .preds
        .iter()
        .enumerate()
        .map(|(s, ps)| {
            let node_s = dag.node_of[s];
            ps.iter()
                .map(|&p| {
                    let node_p = dag.node_of[p as usize];
                    if node_p == node_s {
                        SAME_NODE
                    } else {
                        g.edge_index(node_p, node_s)
                            .expect("DAG edge projects to a graph edge")
                            as u32
                    }
                })
                .collect()
        })
        .collect();
    let mut frac = vec![0.0f64; dag.state_count()];
    let mut touched: Vec<u32> = Vec::new();
    // Frontier-local compressed scratch, reused across the source's
    // pairs: raw `(link, share)` contributions in DAG-processing order.
    // Sized by the states on ONE pair's shortest paths — the former
    // dense epoch-stamped arrays were sized by the whole edge set
    // (12·m bytes per worker), which dominated worker memory at
    // large/xl.
    let mut contribs: Vec<(u32, f64)> = Vec::new();
    let mut out = SourceContrib {
        entries: Vec::new(),
        states_visited: 0,
        pairs: 0,
        scratch_peak: 0,
    };
    for v in (u + 1)..n as NodeId {
        if dag.node_dist[v as usize] == UNREACHED || dag.node_dist[v as usize] == 0 {
            continue;
        }
        accumulate_pair(&dag, &pred_edge, v, &mut frac, &mut touched, &mut contribs);
        out.pairs += 1;
        out.states_visited += touched.len() as u64;
        out.scratch_peak = out.scratch_peak.max(contribs.len());
        // Aggregate the raw contributions per link. The sort is STABLE,
        // so within one link the shares keep their emission order, and
        // the running sum below performs the exact float additions (in
        // the exact order) the dense scratch's `+=` used to — the
        // compressed path is bit-identical by construction.
        contribs.sort_by_key(|&(l, _)| l);
        let mut i = 0usize;
        while i < contribs.len() {
            let l = contribs[i].0;
            let mut w = contribs[i].1;
            let mut j = i + 1;
            while j < contribs.len() && contribs[j].0 == l {
                w += contribs[j].1;
                j += 1;
            }
            out.entries.push((l, v, w));
            i = j;
        }
    }
    out
}

/// Marks a DAG transition between two states of the same node (policy
/// phase changes) in the per-source `pred_edge` table.
const SAME_NODE: u32 = u32::MAX;

/// Backward accumulation for one (source, target) pair: distribute the
/// unit of traffic over the shortest-path DAG, emitting one raw
/// `(link, share)` pair into `contribs` per crossed transition (the
/// caller aggregates per link; see [`source_contrib`]). `pred_edge`
/// mirrors `dag.preds` with each transition's pre-resolved graph-edge
/// index.
fn accumulate_pair(
    dag: &PathDag,
    pred_edge: &[Vec<u32>],
    v: NodeId,
    frac: &mut [f64],
    touched: &mut Vec<u32>,
    contribs: &mut Vec<(u32, f64)>,
) {
    contribs.clear();
    touched.clear();
    let terminals = dag.terminal_states(v);
    let sigma_tot: f64 = terminals.iter().map(|&s| dag.sigma[s as usize]).sum();
    if sigma_tot <= 0.0 {
        return;
    }
    for &s in &terminals {
        frac[s as usize] = dag.sigma[s as usize] / sigma_tot;
        touched.push(s);
    }
    // Process states in decreasing distance order. Distances decrease by
    // exactly 1 along preds, so a simple bucket walk works: a queue
    // ordered by discovery suffices because all terminals share one
    // distance and each step goes one level down.
    let mut i = 0usize;
    while i < touched.len() {
        let s = touched[i];
        i += 1;
        let fs = frac[s as usize];
        if fs <= 0.0 {
            continue;
        }
        for (&p, &e) in dag.preds[s as usize].iter().zip(&pred_edge[s as usize]) {
            let share = fs * dag.sigma[p as usize] / dag.sigma[s as usize];
            if e != SAME_NODE {
                // A link can receive multiple contributions per pair
                // (policy states); emit them raw and let the caller's
                // stable-sorted run-sum aggregate — the scratch stays
                // proportional to one pair's path states, not the whole
                // edge set.
                contribs.push((e, share));
            }
            if frac[p as usize] == 0.0 {
                touched.push(p);
            }
            frac[p as usize] += share;
        }
    }
    for &s in touched.iter() {
        frac[s as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_policy::rel::annotations_from_pairs;

    #[test]
    fn path_graph_traversals() {
        // 0-1-2: link (0,1) carries pairs (0,1),(0,2); link (1,2) carries
        // (1,2),(0,2); all weights 1.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let t = link_traversals(&g, &PathMode::Shortest);
        assert_eq!(t.sizes(), vec![2, 2]);
        for link in t.iter_links() {
            for pw in link {
                assert!((pw.w - 1.0).abs() < 1e-12);
                assert!(pw.u < pw.v);
            }
        }
    }

    #[test]
    fn equal_cost_split_on_square() {
        // 4-cycle: pair (0,2) splits 50/50 over the two sides.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let t = link_traversals(&g, &PathMode::Shortest);
        let idx01 = g.edge_index(0, 1).unwrap();
        let pw: Vec<&PairWeight> = t
            .link(idx01)
            .iter()
            .filter(|p| p.u == 0 && p.v == 2)
            .collect();
        assert_eq!(pw.len(), 1);
        assert!((pw[0].w - 0.5).abs() < 1e-12);
        // Adjacent pair (0,1) uses the link fully.
        let adj: Vec<&PairWeight> = t
            .link(idx01)
            .iter()
            .filter(|p| p.u == 0 && p.v == 1)
            .collect();
        assert!((adj[0].w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn access_link_carries_n_minus_1_pairs() {
        // Star: every spoke is an access link with traversal set size
        // n-1 (paper's observation in §5).
        let g = Graph::from_edges(5, (1..5).map(|i| (0, i)));
        let t = link_traversals(&g, &PathMode::Shortest);
        for s in t.sizes() {
            assert_eq!(s, 4);
        }
    }

    #[test]
    fn weights_sum_to_path_length() {
        // Σ_l w(u,v,l) = d(u,v) for every pair (flow conservation).
        let g = Graph::from_edges(
            6,
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)],
        );
        let t = link_traversals(&g, &PathMode::Shortest);
        let mut per_pair: std::collections::HashMap<(NodeId, NodeId), f64> = Default::default();
        for link in t.iter_links() {
            for pw in link {
                *per_pair.entry((pw.u, pw.v)).or_insert(0.0) += pw.w;
            }
        }
        for ((u, v), total) in per_pair {
            let d = topogen_graph::bfs::distances(&g, u)[v as usize] as f64;
            assert!(
                (total - d).abs() < 1e-9,
                "pair ({u},{v}): Σw = {total}, d = {d}"
            );
        }
    }

    #[test]
    fn policy_excludes_valley_pairs() {
        // 0 prov 1, 2 prov 1: pair (0,2) is unroutable; link loads drop.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let t = link_traversals(&g, &PathMode::Policy(&ann));
        // Each link carries only its adjacent pair.
        assert_eq!(t.sizes(), vec![1, 1]);
    }

    #[test]
    fn policy_concentrates_usage() {
        // Square with a peer shortcut: 0-1 (1 prov 0), 1-2 (1 prov 2),
        // plus 0-2 peer, 2-3 (2 prov 3). Paths from 3: 3→2 up, then peer
        // 2-0 or down 2-1 — but NOT 3→2→0→… anything beyond.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        let ann = annotations_from_pairs(&g, &[(1, 0), (1, 2), (2, 3)], &[(0, 2)], &[]);
        let plain = link_traversals(&g, &PathMode::Shortest);
        let pol = link_traversals(&g, &PathMode::Policy(&ann));
        let total_plain: usize = plain.sizes().iter().sum();
        let total_pol: usize = pol.sizes().iter().sum();
        assert!(total_pol <= total_plain);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        let t = link_traversals(&g, &PathMode::Shortest);
        assert!(t.is_empty());
        assert_eq!(t.total_pairs(), 0);
    }

    #[test]
    fn arena_slices_match_sizes() {
        let g = Graph::from_edges(5, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let t = link_traversals(&g, &PathMode::Shortest);
        let sizes = t.sizes();
        assert_eq!(sizes.len(), t.link_count());
        for (l, &s) in sizes.iter().enumerate() {
            assert_eq!(t.link(l).len(), s);
        }
        assert_eq!(t.total_pairs(), sizes.iter().sum::<usize>());
        assert!(t.arena_bytes() >= t.total_pairs() * std::mem::size_of::<PairWeight>());
    }

    #[test]
    fn instrument_counters_populate() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let ins = Instrument::new();
        let t = link_traversals_threads(&g, &PathMode::Shortest, Some(1), Some(&ins));
        let r = ins.report();
        assert_eq!(r.pairs_accumulated, 6); // C(4,2) reachable pairs
        assert!(r.dag_states > 0);
        assert_eq!(r.arena_bytes, t.arena_bytes() as u64);
        assert!(r.phases.iter().any(|p| p.name == "hier-traversal"));
    }
}
