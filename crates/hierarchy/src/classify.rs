//! Strict / moderate / loose hierarchy classification (§5.1).
//!
//! The paper's three groupings from the link-value rank distributions:
//!
//! * **strict** — "the highest link values in Tree, TS, and Tiers are
//!   significantly higher than all the other topologies, and their link
//!   value distributions fall off rapidly" (max values ≳ 0.25, some
//!   above 0.3);
//! * **moderate** — "like the strict hierarchy graphs, the distribution
//!   of link values falls off quickly ... but the highest value links
//!   are significantly lower" (AS, RL, PLRG);
//! * **loose** — "a significantly more well spread link value
//!   distribution ... the distribution is very flat" (Mesh, Random,
//!   Waxman).

use crate::linkvalue::{link_value_stats, LinkValueStats};

/// The paper's three hierarchy classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HierarchyClass {
    /// Tree-like, deliberately constructed backbone.
    Strict,
    /// Fast falloff with a modest top — the Internet's shape.
    Moderate,
    /// Usage spread nearly evenly.
    Loose,
}

impl std::fmt::Display for HierarchyClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HierarchyClass::Strict => "strict",
            HierarchyClass::Moderate => "moderate",
            HierarchyClass::Loose => "loose",
        };
        write!(f, "{s}")
    }
}

/// Classification thresholds. The defaults encode the paper's §5.1
/// observations and are calibrated on the canonical networks (see this
/// module's tests and the `repro tab-hierarchy` target).
#[derive(Clone, Copy, Debug)]
pub struct HierarchyThresholds {
    /// Normalized max link value at or above which the hierarchy is
    /// strict. Calibration (CI seed 42): the strict graphs (Tree, TS,
    /// Tiers) measure 0.66–0.89, while every moderate graph stays at or
    /// below AS(Policy)'s 0.3185 — shortest-path AS/PLRG fluctuate in
    /// 0.09–0.27 across seeds, and valley-free routing concentrates
    /// AS traffic onto provider links enough to cross the old 0.30
    /// boundary without approaching the strict population. 0.45 sits
    /// between the populations with a documented margin of ≥ 0.13 below
    /// (0.3185 → 0.45) and ≥ 0.21 above (0.45 → 0.6612), so a seed
    /// change moving any instance by a full tenth still classifies the
    /// same way.
    pub strict_max: f64,
    /// A distribution whose median exceeds this fraction of its max is
    /// flat → loose.
    pub loose_median_ratio: f64,
}

impl Default for HierarchyThresholds {
    fn default() -> Self {
        HierarchyThresholds {
            strict_max: 0.45,
            loose_median_ratio: 0.15,
        }
    }
}

/// Classify a normalized link-value distribution.
pub fn classify_hierarchy(values: &[f64]) -> HierarchyClass {
    classify_with(values, &HierarchyThresholds::default())
}

/// Classification with explicit thresholds.
pub fn classify_with(values: &[f64], t: &HierarchyThresholds) -> HierarchyClass {
    let s: LinkValueStats = link_value_stats(values);
    // Flatness first: the paper notes loose graphs' *max* values can be
    // comparable to moderate ones — what distinguishes them is the
    // spread ("the distribution is very flat"), so a high median/max
    // ratio wins regardless of the peak.
    if s.max > 0.0 && s.median >= t.loose_median_ratio * s.max {
        return HierarchyClass::Loose;
    }
    if s.max >= t.strict_max {
        return HierarchyClass::Strict;
    }
    HierarchyClass::Moderate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkvalue::{link_values, PathMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_generators::canonical::{kary_tree, mesh, random_gnp};
    use topogen_generators::plrg::{plrg, PlrgParams};
    use topogen_graph::components::largest_component;

    #[test]
    fn tree_is_strict() {
        let g = kary_tree(3, 4);
        let v = link_values(&g, &PathMode::Shortest);
        assert_eq!(classify_hierarchy(&v), HierarchyClass::Strict);
    }

    #[test]
    fn mesh_is_loose() {
        let g = mesh(9, 9);
        let v = link_values(&g, &PathMode::Shortest);
        assert_eq!(classify_hierarchy(&v), HierarchyClass::Loose);
    }

    #[test]
    fn random_is_loose() {
        let mut rng = StdRng::seed_from_u64(12);
        let g = largest_component(&random_gnp(150, 0.04, &mut rng)).0;
        let v = link_values(&g, &PathMode::Shortest);
        assert_eq!(classify_hierarchy(&v), HierarchyClass::Loose);
    }

    #[test]
    fn plrg_is_moderate() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = largest_component(&plrg(
            &PlrgParams {
                n: 400,
                alpha: 2.2,
                max_degree: None,
            },
            &mut rng,
        ))
        .0;
        let v = link_values(&g, &PathMode::Shortest);
        assert_eq!(classify_hierarchy(&v), HierarchyClass::Moderate);
    }

    #[test]
    fn display_names() {
        assert_eq!(HierarchyClass::Strict.to_string(), "strict");
        assert_eq!(HierarchyClass::Moderate.to_string(), "moderate");
        assert_eq!(HierarchyClass::Loose.to_string(), "loose");
    }

    #[test]
    fn empty_distribution_moderate_fallback() {
        assert_eq!(classify_hierarchy(&[]), HierarchyClass::Moderate);
    }

    /// Pins the recalibrated strict boundary: AS(Policy)'s measured
    /// peak (0.3185 at the CI seed) is moderate, matching the paper's
    /// grouping, while the strict population's floor (0.66) stays
    /// strict — both with at least a 0.13 margin to the 0.45 boundary.
    #[test]
    fn policy_as_peak_is_moderate_with_margin() {
        // Steep falloff (median far below 15% of max) in both cases, so
        // the loose rule does not fire and the max decides.
        let policy_like = [0.3185, 0.02, 0.01, 0.005, 0.001];
        assert_eq!(
            classify_with(&policy_like, &HierarchyThresholds::default()),
            HierarchyClass::Moderate
        );
        let strict_floor = [0.6612, 0.02, 0.01, 0.005, 0.001];
        assert_eq!(
            classify_with(&strict_floor, &HierarchyThresholds::default()),
            HierarchyClass::Strict
        );
        let t = HierarchyThresholds::default();
        assert!(t.strict_max - 0.3185 >= 0.13);
        assert!(0.6612 - t.strict_max >= 0.21);
    }
}
