//! Correlation between link usage and degree (§5.2, Figure 5).
//!
//! "We compute the correlation between a link's value and the lower
//! degree of the nodes at the end of the link. A high correlation
//! between these two indicates that high-value links connect high degree
//! nodes" — i.e. the hierarchy is implicit in the degree distribution
//! (PLRG) rather than deliberately constructed (Tree, TS, Tiers).

use topogen_graph::Graph;

/// Pearson correlation coefficient between two equal-length samples;
/// `None` when either sample is constant or too short.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 1e-300 || syy <= 1e-300 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// The paper's Figure 5 statistic: Pearson correlation between each
/// link's value and the smaller of its endpoint degrees. Returns `None`
/// for degenerate inputs.
pub fn link_value_degree_correlation(g: &Graph, values: &[f64]) -> Option<f64> {
    assert_eq!(values.len(), g.edge_count());
    let min_deg: Vec<f64> = g
        .edges()
        .iter()
        .map(|e| g.degree(e.a).min(g.degree(e.b)) as f64)
        .collect();
    pearson(values, &min_deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkvalue::{link_values, PathMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_generators::canonical::kary_tree;
    use topogen_generators::plrg::{plrg, PlrgParams};
    use topogen_graph::components::largest_component;

    #[test]
    fn pearson_basics() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_none());
        assert!(pearson(&[1.0], &[2.0]).is_none());
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![1.0, -1.0, 1.0, -1.0];
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.5);
    }

    #[test]
    fn plrg_correlation_exceeds_tree() {
        // The headline Figure 5 ordering: PLRG's hierarchy is carried by
        // its degree distribution (r ≈ 1); the Tree's by construction
        // (lowest r).
        let mut rng = StdRng::seed_from_u64(3);
        let p = largest_component(&plrg(
            &PlrgParams {
                n: 400,
                alpha: 2.2,
                max_degree: None,
            },
            &mut rng,
        ))
        .0;
        let pv = link_values(&p, &PathMode::Shortest);
        let rp = link_value_degree_correlation(&p, &pv).unwrap();

        let t = kary_tree(3, 4);
        let tv = link_values(&t, &PathMode::Shortest);
        let rt = link_value_degree_correlation(&t, &tv).unwrap();

        assert!(rp > 0.5, "PLRG correlation {rp}");
        assert!(rp > rt + 0.2, "PLRG {rp} vs Tree {rt}");
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let g = kary_tree(2, 2);
        let _ = link_value_degree_correlation(&g, &[1.0]);
    }
}
