//! # topogen-hierarchy
//!
//! The paper's hierarchy measure (§5): how concentrated is *usage* across
//! a topology's links?
//!
//! For each link, its **traversal set** is the set of source–destination
//! pairs whose shortest (or policy-compliant) paths cross the link, with
//! equal-cost multipath splitting weights (footnote 27). The link's
//! **value** is the minimum *weighted vertex cover* of that set — "the
//! smallest set of nodes affected by removal of the link" — computed with
//! the classical primal-dual approximation \[30\]. The distribution of
//! link values over a topology classifies its hierarchy:
//!
//! * **strict** — a few links carry enormous values (Tree, Transit-Stub,
//!   Tiers: deliberately constructed backbones);
//! * **moderate** — values fall off quickly but the top is far lower
//!   (AS, RL, PLRG and all degree-based generators);
//! * **loose** — values are spread almost evenly (Mesh, Random, Waxman).
//!
//! §5.2's final step correlates link values with the *smaller endpoint
//! degree* of each link: a high correlation means the backbone is simply
//! "links between hubs" (PLRG's implicit, degree-driven hierarchy); a low
//! correlation means the backbone was placed deliberately (Tree, TS,
//! Tiers, RL).
//!
//! Modules: [`dag`] (unified shortest-path/policy path DAGs),
//! [`traversal`] (per-link traversal sets — a parallel, arena-backed
//! engine over the shared `topogen-par` map, bit-identical at any
//! thread count), [`cover`] (weighted vertex cover on compact
//! index-remapped vectors), [`linkvalue`] (end-to-end link values and
//! rank distributions, with optional instrumentation), [`baseline`]
//! (the serial pre-arena pipeline, kept as correctness oracle and bench
//! baseline), [`classify`] (strict/moderate/loose), [`correlation`]
//! (link-value ↔ degree).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod classify;
pub mod correlation;
pub mod cover;
pub mod dag;
pub mod linkvalue;
pub mod traversal;

pub use classify::{classify_hierarchy, HierarchyClass};
pub use linkvalue::{link_values, link_values_threads, normalized_rank_distribution, PathMode};
pub use traversal::{link_traversals, link_traversals_threads, LinkTraversals};
