//! A unified path-DAG representation covering both plain shortest paths
//! and valley-free policy paths.
//!
//! The traversal-set accumulation (§5) only needs, per source: states
//! with distances, equal-cost path counts σ, predecessor lists, and a
//! projection from states to graph nodes. Plain BFS uses one state per
//! node; the policy automaton uses two.

use topogen_graph::bfs::{shortest_path_dag, ShortestPathDag};
use topogen_graph::{Graph, NodeId, UNREACHED};
use topogen_policy::rel::AsAnnotations;
use topogen_policy::valley::{policy_shortest_path_dag, state_node, PolicyDag};

/// Unified per-source path DAG.
#[derive(Clone, Debug)]
pub struct PathDag {
    /// Graph node of each state.
    pub node_of: Vec<NodeId>,
    /// Distance per state (`UNREACHED` if unreachable).
    pub dist: Vec<u32>,
    /// Equal-cost path count per state.
    pub sigma: Vec<f64>,
    /// Predecessor states per state.
    pub preds: Vec<Vec<u32>>,
    /// Per-node distance (min over that node's states).
    pub node_dist: Vec<u32>,
    /// States of each node (1 for plain, 2 for policy).
    states_per_node: u32,
    /// Source node.
    pub source: NodeId,
}

impl PathDag {
    /// Build a plain shortest-path DAG from `src`.
    pub fn plain(g: &Graph, src: NodeId) -> PathDag {
        let d: ShortestPathDag = shortest_path_dag(g, src);
        let n = g.node_count();
        PathDag {
            node_of: (0..n as NodeId).collect(),
            dist: d.dist.clone(),
            sigma: d.sigma,
            preds: d
                .preds
                .into_iter()
                .map(|ps| ps.into_iter().collect())
                .collect(),
            node_dist: d.dist,
            states_per_node: 1,
            source: src,
        }
    }

    /// Build a valley-free policy DAG from `src`.
    pub fn policy(g: &Graph, ann: &AsAnnotations, src: NodeId) -> PathDag {
        let d: PolicyDag = policy_shortest_path_dag(g, ann, src);
        let ns = d.dist.len();
        PathDag {
            node_of: (0..ns as u32).map(state_node).collect(),
            dist: d.dist,
            sigma: d.sigma,
            preds: d.preds,
            node_dist: d.node_dist,
            states_per_node: 2,
            source: src,
        }
    }

    /// The states of node `v` realizing its shortest distance.
    pub fn terminal_states(&self, v: NodeId) -> Vec<u32> {
        let d = self.node_dist[v as usize];
        if d == UNREACHED {
            return Vec::new();
        }
        let base = v * self.states_per_node;
        (base..base + self.states_per_node)
            .filter(|&s| self.dist[s as usize] == d)
            .collect()
    }

    /// Total σ from the source to node `v`.
    pub fn sigma_to(&self, v: NodeId) -> f64 {
        self.terminal_states(v)
            .into_iter()
            .map(|s| self.sigma[s as usize])
            .sum()
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.dist.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_policy::rel::annotations_from_pairs;

    #[test]
    fn plain_dag_square() {
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = PathDag::plain(&g, 0);
        assert_eq!(d.state_count(), 4);
        assert_eq!(d.node_dist, vec![0, 1, 2, 1]);
        assert_eq!(d.sigma_to(2), 2.0);
        assert_eq!(d.terminal_states(2), vec![2]);
    }

    #[test]
    fn policy_dag_states() {
        // up then down: 0 → 1 → 2 (1 provider of both).
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(1, 0), (1, 2)], &[], &[]);
        let d = PathDag::policy(&g, &ann, 0);
        assert_eq!(d.state_count(), 6);
        assert_eq!(d.node_dist[2], 2);
        assert_eq!(d.sigma_to(2), 1.0);
        // Node 2 is reached only in the descending phase.
        let ts = d.terminal_states(2);
        assert_eq!(ts.len(), 1);
        assert_eq!(d.node_of[ts[0] as usize], 2);
    }

    #[test]
    fn unreachable_terminals_empty() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let d = PathDag::policy(&g, &ann, 0);
        assert!(d.terminal_states(2).is_empty());
        assert_eq!(d.sigma_to(2), 0.0);
    }
}
