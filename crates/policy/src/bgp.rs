//! BGP routing-table simulation.
//!
//! The paper derives its AS graph and relationships "from AS path
//! information in backbone BGP routing tables" taken at a router peering
//! with many backbones (§3.1.1). Lacking 2001 route-views data, we
//! simulate the equivalent artifact: for each vantage AS, the set of AS
//! paths its table would carry — one shortest valley-free path per
//! reachable destination. Feeding these to [`crate::gao`] closes the loop
//! the paper ran on real tables.

use crate::rel::AsAnnotations;
use crate::valley::{one_policy_path, policy_shortest_path_dag};
use topogen_graph::{Graph, NodeId};

/// The simulated routing table of one vantage AS: one AS path per
/// reachable destination (paths of length ≥ 2 nodes; the trivial
/// self-path is omitted).
pub fn routing_table(g: &Graph, ann: &AsAnnotations, vantage: NodeId) -> Vec<Vec<NodeId>> {
    let dag = policy_shortest_path_dag(g, ann, vantage);
    let mut table = Vec::new();
    for d in 0..g.node_count() as NodeId {
        if d == vantage {
            continue;
        }
        if let Some(path) = one_policy_path(&dag, d) {
            if path.len() >= 2 {
                table.push(path);
            }
        }
    }
    table
}

/// Concatenated tables of several vantage points — the input the paper's
/// relationship inference consumed. Vantages are typically chosen among
/// well-connected ASes (route-views peers with "more than 20 backbone
/// routers"); pass high-degree nodes for fidelity.
pub fn routing_tables(g: &Graph, ann: &AsAnnotations, vantages: &[NodeId]) -> Vec<Vec<NodeId>> {
    let mut all = Vec::new();
    for &v in vantages {
        all.extend(routing_table(g, ann, v));
    }
    all
}

/// The `k` highest-degree nodes — natural vantage choices.
pub fn top_degree_nodes(g: &Graph, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = (0..g.node_count() as NodeId).collect();
    nodes.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    nodes.truncate(k);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gao::{infer_relationships, GaoConfig};
    use crate::rel::annotations_from_pairs;

    /// Three-level chain: 0 provides for 1, 1 provides for 2.
    fn chain() -> (Graph, AsAnnotations) {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (1, 2)], &[], &[]);
        (g, ann)
    }

    #[test]
    fn table_contains_all_reachable() {
        let (g, ann) = chain();
        let t = routing_table(&g, &ann, 2);
        // 2 can reach 1 and 0 uphill.
        assert_eq!(t.len(), 2);
        assert!(t.contains(&vec![2, 1]));
        assert!(t.contains(&vec![2, 1, 0]));
    }

    #[test]
    fn policy_shadows_some_destinations() {
        // 0 prov 1, 2 prov 1: 0's table cannot contain 2.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let t = routing_table(&g, &ann, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0], vec![0, 1]);
    }

    #[test]
    fn top_degree_vantages() {
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (3, 4)]);
        assert_eq!(top_degree_nodes(&g, 2), vec![0, 3]);
        assert_eq!(top_degree_nodes(&g, 10).len(), 5);
    }

    #[test]
    fn tables_feed_gao_roundtrip() {
        // Two-tier topology; simulate tables from the two cores, infer,
        // compare with ground truth.
        let g = Graph::from_edges(6, vec![(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)]);
        let truth = annotations_from_pairs(&g, &[(0, 2), (0, 3), (1, 4), (1, 5)], &[(0, 1)], &[]);
        // Vantages at the leaves see the full up-down structure.
        let tables = routing_tables(&g, &truth, &[2, 3, 4, 5]);
        let inferred = infer_relationships(&g, &tables, &GaoConfig::default());
        assert!(
            inferred.agreement(&truth) >= 0.8,
            "agreement {}",
            inferred.agreement(&truth)
        );
    }

    #[test]
    fn empty_graph_table() {
        let g = Graph::empty(1);
        let ann = AsAnnotations::new(&g, vec![]);
        assert!(routing_table(&g, &ann, 0).is_empty());
    }
}
