//! Valley-free (policy) shortest paths via a two-phase state machine.
//!
//! The paper's policy model (§3.2.1): "the shortest AS path between two
//! nodes that does not violate provider-customer relationships ... once a
//! path traverses down a customer AS, it will never traverse up to a
//! provider AS". Formally a valid path is `up* peer? down*`, where *up*
//! steps go customer→provider, *down* steps go provider→customer, at most
//! one peer link may appear at the apex, and sibling links are free.
//!
//! We run BFS over the product of the graph with a two-state automaton:
//!
//! * **Ascending** — only up/sibling steps taken so far; may still climb,
//!   peer once, or descend.
//! * **Descending** — a peer or down step has been taken; only
//!   down/sibling steps remain.
//!
//! Each physical valley-free path corresponds to exactly one state
//! trajectory, so path counts (σ) over the state DAG equal physical
//! equal-cost path counts — which the hierarchy analysis (§5, footnote
//! 27) relies on.

use crate::rel::AsAnnotations;
use std::collections::VecDeque;
use topogen_graph::{Graph, NodeId, UNREACHED};

/// Phase of the valley-free automaton.
pub const PHASE_UP: u32 = 0;
/// See [`PHASE_UP`].
pub const PHASE_DOWN: u32 = 1;

/// State id for `(node, phase)`.
#[inline]
pub fn state(node: NodeId, phase: u32) -> u32 {
    node * 2 + phase
}

/// Node of a state id.
#[inline]
pub fn state_node(s: u32) -> NodeId {
    s / 2
}

/// Shortest valley-free distances (in AS hops) from `src` to every node.
/// Unreachable-under-policy nodes get [`UNREACHED`].
///
/// ```
/// use topogen_graph::{Graph, UNREACHED};
/// use topogen_policy::rel::annotations_from_pairs;
/// use topogen_policy::valley::policy_distances;
///
/// // 0 and 2 are both customers of 1: the path 0→1→2 (up, down) is
/// // valley-free, so they can reach each other through their provider.
/// let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
/// let ann = annotations_from_pairs(&g, &[(1, 0), (1, 2)], &[], &[]);
/// assert_eq!(policy_distances(&g, &ann, 0)[2], 2);
///
/// // Flip the middle AS to be the *customer* of both: now 0→1→2 would
/// // descend and climb again (a valley) — unroutable.
/// let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
/// assert_eq!(policy_distances(&g, &ann, 0)[2], UNREACHED);
/// ```
pub fn policy_distances(g: &Graph, ann: &AsAnnotations, src: NodeId) -> Vec<u32> {
    policy_shortest_path_dag(g, ann, src).node_dist
}

/// The full state-level shortest-path structure from one source: per-state
/// distances, equal-cost path counts σ, and DAG predecessors — everything
/// the policy-aware hierarchy and ball-growing computations consume.
#[derive(Clone, Debug)]
pub struct PolicyDag {
    /// Distance per state (`2 * node_count` states), UNREACHED if not
    /// reachable in that phase.
    pub dist: Vec<u32>,
    /// Number of distinct shortest valley-free paths arriving in each
    /// state.
    pub sigma: Vec<f64>,
    /// Predecessor states in the shortest-path state DAG.
    pub preds: Vec<Vec<u32>>,
    /// States in BFS (non-decreasing distance) order.
    pub order: Vec<u32>,
    /// Per-node distance: min over the node's two states.
    pub node_dist: Vec<u32>,
    /// The source node.
    pub source: NodeId,
}

impl PolicyDag {
    /// The states of `v` that realize its shortest policy distance
    /// (0, 1 or 2 states).
    pub fn terminal_states(&self, v: NodeId) -> Vec<u32> {
        let d = self.node_dist[v as usize];
        if d == UNREACHED {
            return Vec::new();
        }
        [state(v, PHASE_UP), state(v, PHASE_DOWN)]
            .into_iter()
            .filter(|&s| self.dist[s as usize] == d)
            .collect()
    }

    /// Total number of shortest policy paths from the source to `v`.
    pub fn sigma_to(&self, v: NodeId) -> f64 {
        self.terminal_states(v)
            .into_iter()
            .map(|s| self.sigma[s as usize])
            .sum()
    }
}

/// Compute the policy shortest-path DAG from `src`.
pub fn policy_shortest_path_dag(g: &Graph, ann: &AsAnnotations, src: NodeId) -> PolicyDag {
    let n = g.node_count();
    let ns = 2 * n;
    let mut dist = vec![UNREACHED; ns];
    let mut sigma = vec![0.0f64; ns];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); ns];
    let mut order: Vec<u32> = Vec::with_capacity(ns);
    let s0 = state(src, PHASE_UP);
    dist[s0 as usize] = 0;
    sigma[s0 as usize] = 1.0;
    let mut q = VecDeque::new();
    q.push_back(s0);
    while let Some(s) = q.pop_front() {
        order.push(s);
        let u = state_node(s);
        let phase = s % 2;
        let du = dist[s as usize];
        for &v in g.neighbors(u) {
            let rel = ann.get(g, u, v).expect("annotated graph covers every edge");
            // Determine the successor phase, or skip if forbidden.
            let next_phase = {
                let up = rel.provider(u.min(v), u.max(v)) == Some(v);
                let down = rel.customer(u.min(v), u.max(v)) == Some(v);
                let peer = matches!(rel, crate::rel::Relationship::Peer);
                let sib = matches!(rel, crate::rel::Relationship::Sibling);
                if phase == PHASE_UP {
                    if up || sib {
                        PHASE_UP
                    } else if peer || down {
                        PHASE_DOWN
                    } else {
                        continue;
                    }
                } else {
                    // Descending: only down or sibling.
                    if down || sib {
                        PHASE_DOWN
                    } else {
                        continue;
                    }
                }
            };
            let sv = state(v, next_phase);
            if dist[sv as usize] == UNREACHED {
                dist[sv as usize] = du + 1;
                q.push_back(sv);
            }
            if dist[sv as usize] == du + 1 {
                sigma[sv as usize] += sigma[s as usize];
                preds[sv as usize].push(s);
            }
        }
    }
    let node_dist: Vec<u32> = (0..n).map(|v| dist[2 * v].min(dist[2 * v + 1])).collect();
    PolicyDag {
        dist,
        sigma,
        preds,
        order,
        node_dist,
        source: src,
    }
}

/// Reconstruct one shortest policy path from the DAG's source to `v`
/// (first-predecessor choice; deterministic). Returns the node sequence
/// source..=v, or `None` if unreachable.
pub fn one_policy_path(dag: &PolicyDag, v: NodeId) -> Option<Vec<NodeId>> {
    let terminals = dag.terminal_states(v);
    let mut s = *terminals.first()?;
    let mut rev = vec![state_node(s)];
    while dag.dist[s as usize] > 0 {
        s = dag.preds[s as usize][0];
        rev.push(state_node(s));
    }
    rev.reverse();
    Some(rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::annotations_from_pairs;
    use topogen_graph::Graph;

    /// The paper's Appendix E example (Figure 15):
    /// provider→customer: A→B, A→C, A→H(?) — we reconstruct the figure:
    /// nodes A=0,B=1,C=2,D=3,E=4,F=5,G=6,H=7 with
    /// A→B, A→C, A→H, B→E, C→D, E→G, E→F, D→E? The figure's stated
    /// balls: radius 3 from A = {A,B,C,D,E,G,H} with links (A,B),(A,C),
    /// (A,H),(B,E),(C,D),(E,G); radius 4 adds F and links (D,E),(E,F).
    /// That is consistent with: A provider of B, C, H; B provider of E;
    /// C provider of D; E provider of G and F; D provider of E.
    fn figure15() -> (Graph, crate::rel::AsAnnotations) {
        let g = Graph::from_edges(
            8,
            vec![
                (0, 1), // A-B
                (0, 2), // A-C
                (0, 7), // A-H
                (1, 4), // B-E
                (2, 3), // C-D
                (3, 4), // D-E
                (4, 6), // E-G
                (4, 5), // E-F
            ],
        );
        let ann = annotations_from_pairs(
            &g,
            &[
                (0, 1),
                (0, 2),
                (0, 7),
                (1, 4),
                (2, 3),
                (3, 4),
                (4, 6),
                (4, 5),
            ],
            &[],
            &[],
        );
        (g, ann)
    }

    #[test]
    fn figure15_distances_from_a() {
        let (g, ann) = figure15();
        let d = policy_distances(&g, &ann, 0);
        // A=0 B=1 C=1 H=1 E=2 D=2 G=3 F=3? The paper says F enters at
        // radius 4 via D→E→F because the direct B→E→F path... wait:
        // A→B→E→F is all downhill (A prov B, B prov E, E prov F): F at 3.
        // But the paper's figure places F at h=4. The figure must orient
        // B–E differently: E provider of B would block A→B→E.
        // See figure15_paper_variant below; here F is at 3.
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], 1);
        assert_eq!(d[7], 1);
        assert_eq!(d[4], 2);
        assert_eq!(d[3], 2);
        assert_eq!(d[6], 3);
        assert_eq!(d[5], 3);
    }

    /// The exact Figure 15 semantics: with E a *customer* of B replaced
    /// by E being reached only via the valley path, F lands at hop 4.
    fn figure15_paper() -> (Graph, crate::rel::AsAnnotations) {
        let g = Graph::from_edges(
            8,
            vec![
                (0, 1), // A-B
                (0, 2), // A-C
                (0, 7), // A-H
                (1, 4), // B-E: E provider of B (customer-provider from B)
                (2, 3), // C-D
                (3, 4), // D-E
                (4, 6), // E-G
                (4, 5), // E-F
            ],
        );
        let ann = annotations_from_pairs(
            &g,
            &[
                (0, 1),
                (0, 2),
                (0, 7),
                (4, 1), // E provider of B
                (2, 3),
                (3, 4), // D provider of E
                (4, 6),
                (4, 5),
            ],
            &[],
            &[],
        );
        (g, ann)
    }

    #[test]
    fn figure15_paper_ball_semantics() {
        let (g, ann) = figure15_paper();
        let d = policy_distances(&g, &ann, 0);
        // A cannot reach E via B (that would be down A→B then up B→E).
        // E is reached via A→C→D→E (down, down, down): distance 3.
        assert_eq!(d[4], 3);
        // F and G hang below E: distance 4.
        assert_eq!(d[5], 4);
        assert_eq!(d[6], 4);
        // B, C, H at 1; D at 2.
        assert_eq!(d[1], 1);
        assert_eq!(d[3], 2);
    }

    #[test]
    fn valley_is_blocked() {
        // 0 is provider of 1; 2 is provider of 1. Path 0→1→2 would be
        // down-then-up: invalid. 0 and 2 are mutually unreachable.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let d = policy_distances(&g, &ann, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
        // And symmetrically.
        let d2 = policy_distances(&g, &ann, 2);
        assert_eq!(d2[0], UNREACHED);
    }

    #[test]
    fn up_then_down_allowed() {
        // Customer 0 → provider 1 → customer 2: classic up-down path.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(1, 0), (1, 2)], &[], &[]);
        let d = policy_distances(&g, &ann, 0);
        assert_eq!(d[2], 2);
    }

    #[test]
    fn single_peer_at_apex() {
        // 0 up to 1, peer 1-2, down 2-3: valid (up* peer down*).
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let ann = annotations_from_pairs(&g, &[(1, 0), (2, 3)], &[(1, 2)], &[]);
        let d = policy_distances(&g, &ann, 0);
        assert_eq!(d[3], 3);
    }

    #[test]
    fn two_peer_links_blocked() {
        // 0 peer 1 peer 2: second peer step is invalid.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[], &[(0, 1), (1, 2)], &[]);
        let d = policy_distances(&g, &ann, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
    }

    #[test]
    fn peer_then_up_blocked() {
        // 0 peer 1, then 1 up to 2: invalid.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(2, 1)], &[(0, 1)], &[]);
        let d = policy_distances(&g, &ann, 0);
        assert_eq!(d[2], UNREACHED);
    }

    #[test]
    fn siblings_are_transparent() {
        // down, sibling, down: valid. up after sibling-down: invalid.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 3)], &[], &[(1, 2)]);
        let d = policy_distances(&g, &ann, 0);
        assert_eq!(d[3], 3);
    }

    #[test]
    fn sibling_up_down_flexible() {
        // sibling then up is fine (sibling keeps the ascending phase).
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(2, 1)], &[], &[(0, 1)]);
        let d = policy_distances(&g, &ann, 0);
        assert_eq!(d[2], 2);
    }

    #[test]
    fn policy_distance_longer_than_shortest() {
        // Square 0-1-2-3-0. Direct 0-1 is customer→customer of different
        // providers... construct: 1 provider of 0 and 2; 3 provider of 0
        // and 2. Distance 0→2 is 2 both raw and policy. Now make policy
        // force the long way: chain where shortcut is a valley.
        // 0-1 (1 prov 0), 1-2 (1 prov 2): up then down = 2. OK valid.
        // Use the classic: path inflation happens when the valley path is
        // shorter: 0-1 (0 prov 1), 1-2 (2 prov 1): 0→1→2 is down-up =
        // invalid; alternative 0-3 (3 prov 0), 3-2 (3 prov 2): up-down
        // valid, length 2. With both, policy distance equals 2 but only
        // one of the two 2-hop paths is policy-compliant.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (0, 3), (2, 3)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1), (3, 0), (3, 2)], &[], &[]);
        let dag = policy_shortest_path_dag(&g, &ann, 0);
        assert_eq!(dag.node_dist[2], 2);
        assert_eq!(dag.sigma_to(2), 1.0, "only the 0-3-2 path is valid");
    }

    #[test]
    fn sigma_counts_equal_cost_policy_paths() {
        // Two disjoint up-down paths 0→{1,2}→3 of equal length.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 3), (0, 2), (2, 3)]);
        let ann = annotations_from_pairs(&g, &[(1, 0), (1, 3), (2, 0), (2, 3)], &[], &[]);
        let dag = policy_shortest_path_dag(&g, &ann, 0);
        assert_eq!(dag.node_dist[3], 2);
        assert_eq!(dag.sigma_to(3), 2.0);
    }

    #[test]
    fn one_policy_path_reconstruction() {
        let (g, ann) = figure15_paper();
        let dag = policy_shortest_path_dag(&g, &ann, 0);
        let p = one_policy_path(&dag, 5).unwrap();
        assert_eq!(p, vec![0, 2, 3, 4, 5]);
        assert_eq!(one_policy_path(&dag, 0).unwrap(), vec![0]);
    }

    #[test]
    fn unreachable_has_no_path() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let dag = policy_shortest_path_dag(&g, &ann, 0);
        assert!(one_policy_path(&dag, 2).is_none());
        assert_eq!(dag.sigma_to(2), 0.0);
    }
}
