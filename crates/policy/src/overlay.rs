//! Router-level policy paths through an AS overlay (Appendix E).
//!
//! "To compute the policy path between any two RL nodes, we first compute
//! the corresponding AS level policy paths between them, then select the
//! shortest router hop paths within these sequences of AS paths."
//!
//! We realize that as a constrained router-level BFS: starting from a
//! source router in AS `A`, the walk may move freely among routers of the
//! same AS, and may cross an AS boundary `X → Y` only if `Y` lies one
//! step further along some shortest valley-free AS path from `A` (i.e.
//! `policy_dist(A, Y) = policy_dist(A, X) + 1` with a policy-DAG edge
//! between the corresponding states). Every produced router path then
//! projects onto a shortest policy AS path, which is the paper's
//! construction.

use crate::rel::AsAnnotations;
use crate::valley::{policy_shortest_path_dag, state, PHASE_DOWN, PHASE_UP};
use std::collections::VecDeque;
use topogen_graph::subgraph::SubgraphMap;
use topogen_graph::{Graph, GraphBuilder, NodeId, UNREACHED};

/// A router-level topology overlaid on an annotated AS graph.
#[derive(Clone, Debug)]
pub struct RouterOverlay<'a> {
    /// The router-level graph.
    pub routers: &'a Graph,
    /// AS id of each router.
    pub router_as: &'a [NodeId],
    /// The AS-level graph.
    pub as_graph: &'a Graph,
    /// AS relationship annotations.
    pub annotations: &'a AsAnnotations,
}

impl<'a> RouterOverlay<'a> {
    /// Construct, validating dimensions.
    ///
    /// # Panics
    /// Panics if `router_as` does not cover every router or references an
    /// AS out of range.
    pub fn new(
        routers: &'a Graph,
        router_as: &'a [NodeId],
        as_graph: &'a Graph,
        annotations: &'a AsAnnotations,
    ) -> Self {
        assert_eq!(router_as.len(), routers.node_count());
        assert!(router_as
            .iter()
            .all(|&a| (a as usize) < as_graph.node_count()));
        RouterOverlay {
            routers,
            router_as,
            as_graph,
            annotations,
        }
    }

    /// Policy-constrained router-hop distances from router `src`.
    ///
    /// State space: router × phase-of-AS-walk. Intra-AS moves preserve
    /// the AS-level state; inter-AS moves must follow an edge of the
    /// valley-free automaton (the same two phases as
    /// [`crate::valley`]).
    pub fn policy_router_distances(&self, src: NodeId) -> Vec<u32> {
        let rl = self.routers;
        let n = rl.node_count();
        let src_as = self.router_as[src as usize];
        // AS-level policy structure from the source AS.
        let as_dag = policy_shortest_path_dag(self.as_graph, self.annotations, src_as);
        // Router-level state: router * 2 + phase.
        let mut dist = vec![UNREACHED; 2 * n];
        let mut out = vec![UNREACHED; n];
        let s0 = (src * 2 + PHASE_UP) as usize;
        dist[s0] = 0;
        out[src as usize] = 0;
        let mut q = VecDeque::new();
        q.push_back(src * 2 + PHASE_UP);
        while let Some(s) = q.pop_front() {
            let r = s / 2;
            let phase = s % 2;
            let d = dist[s as usize];
            let ra = self.router_as[r as usize];
            for &r2 in rl.neighbors(r) {
                let ra2 = self.router_as[r2 as usize];
                let next_phase = if ra2 == ra {
                    // Intra-AS hop: phase unchanged.
                    Some(phase)
                } else {
                    // Inter-AS hop: must advance along the AS policy DAG
                    // from state (ra, phase) to (ra2, p2) for some p2.
                    let from_state = state(ra, phase);
                    let mut found = None;
                    for p2 in [PHASE_UP, PHASE_DOWN] {
                        let to_state = state(ra2, p2);
                        if as_dag.dist[to_state as usize] != UNREACHED
                            && as_dag.dist[from_state as usize] != UNREACHED
                            && as_dag.dist[to_state as usize]
                                == as_dag.dist[from_state as usize] + 1
                            && as_dag.preds[to_state as usize].contains(&from_state)
                        {
                            found = Some(p2);
                            break;
                        }
                    }
                    found
                };
                if let Some(p2) = next_phase {
                    let s2 = r2 * 2 + p2;
                    if dist[s2 as usize] == UNREACHED {
                        dist[s2 as usize] = d + 1;
                        if out[r2 as usize] == UNREACHED {
                            out[r2 as usize] = d + 1;
                        }
                        q.push_back(s2);
                    }
                }
            }
        }
        out
    }

    /// Policy-induced router-level ball: routers within policy router
    /// distance `h` of `center`, with the links traversed by the
    /// constrained BFS. Node 0 of the result is the center.
    pub fn policy_router_ball(&self, center: NodeId, h: u32) -> (Graph, SubgraphMap) {
        let dist = self.policy_router_distances(center);
        self.policy_router_ball_from_dist(&dist, h)
    }

    /// Ball extraction from a precomputed policy distance field (lets
    /// callers grow all radii from one BFS).
    pub fn policy_router_ball_from_dist(&self, dist: &[u32], h: u32) -> (Graph, SubgraphMap) {
        let n = self.routers.node_count();
        let mut keep: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| dist[v as usize] <= h)
            .collect();
        keep.sort_by_key(|&v| (dist[v as usize], v));
        let mut idx = vec![u32::MAX; n];
        for (i, &v) in keep.iter().enumerate() {
            idx[v as usize] = i as u32;
        }
        let mut b = GraphBuilder::new(keep.len());
        for &v in &keep {
            for &w in self.routers.neighbors(v) {
                if idx[w as usize] == u32::MAX || w <= v {
                    continue;
                }
                // Keep links consistent with shortest policy progress:
                // the two endpoints differ by at most one hop.
                let (dv, dw) = (dist[v as usize], dist[w as usize]);
                if dv.abs_diff(dw) <= 1 {
                    b.add_edge(idx[v as usize], idx[w as usize]);
                }
            }
        }
        (b.build(), SubgraphMap::from_originals(keep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::annotations_from_pairs;

    /// Two ASes (0 provider of 1), each with a 2-router chain; border
    /// routers 1 (AS0) and 2 (AS1).
    fn small_overlay() -> (Graph, Vec<NodeId>, Graph, AsAnnotations) {
        let routers = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let router_as = vec![0, 0, 1, 1];
        let as_graph = Graph::from_edges(2, vec![(0, 1)]);
        let ann = annotations_from_pairs(&as_graph, &[(0, 1)], &[], &[]);
        (routers, router_as, as_graph, ann)
    }

    #[test]
    fn distances_follow_router_hops() {
        let (routers, router_as, as_graph, ann) = small_overlay();
        let ov = RouterOverlay::new(&routers, &router_as, &as_graph, &ann);
        let d = ov.policy_router_distances(0);
        assert_eq!(d, vec![0, 1, 2, 3]);
    }

    #[test]
    fn valley_blocks_router_paths() {
        // AS path 0→1→2 is down-then-up (1 is customer of both): routers
        // of AS 2 must be unreachable from AS 0.
        let routers = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let router_as = vec![0, 1, 2];
        let as_graph = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&as_graph, &[(0, 1), (2, 1)], &[], &[]);
        let ov = RouterOverlay::new(&routers, &router_as, &as_graph, &ann);
        let d = ov.policy_router_distances(0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHED);
    }

    #[test]
    fn intra_as_detours_allowed() {
        // AS 0 has routers 0-1-2 in a chain; only router 2 borders AS 1
        // (router 3). Path 0→3 must take 3 hops.
        let routers = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let router_as = vec![0, 0, 0, 1];
        let as_graph = Graph::from_edges(2, vec![(0, 1)]);
        let ann = annotations_from_pairs(&as_graph, &[(0, 1)], &[], &[]);
        let ov = RouterOverlay::new(&routers, &router_as, &as_graph, &ann);
        let d = ov.policy_router_distances(0);
        assert_eq!(d[3], 3);
    }

    #[test]
    fn router_ball_membership() {
        let (routers, router_as, as_graph, ann) = small_overlay();
        let ov = RouterOverlay::new(&routers, &router_as, &as_graph, &ann);
        let (ball, map) = ov.policy_router_ball(0, 2);
        assert_eq!(ball.node_count(), 3);
        assert_eq!(map.to_original(0), 0);
        let (full, _) = ov.policy_router_ball(0, 3);
        assert_eq!(full.node_count(), 4);
    }

    #[test]
    fn non_policy_as_shortcut_excluded() {
        // Routers: AS0(r0) - AS1(r1) - AS2(r2), plus direct AS0-AS2
        // router link (r0-r2). AS relationships: 1 provider of 0 and 2;
        // AS edge 0-2 is peer… but the AS path 0→2 via the peer link is
        // length 1 < 2: policy shortest. So r0→r2 direct is allowed and
        // distance 1.
        let routers = Graph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
        let router_as = vec![0, 1, 2];
        let as_graph = Graph::from_edges(3, vec![(0, 1), (1, 2), (0, 2)]);
        let ann = annotations_from_pairs(&as_graph, &[(1, 0), (1, 2)], &[(0, 2)], &[]);
        let ov = RouterOverlay::new(&routers, &router_as, &as_graph, &ann);
        let d = ov.policy_router_distances(0);
        assert_eq!(d[2], 1);
    }
}
