//! A Gao–Rexford BGP route-selection simulator.
//!
//! The paper approximates policy routing by *shortest* valley-free paths
//! (§3.2.1, after \[42\]). Real BGP is stricter: every AS prefers
//! customer-learned routes over peer-learned over provider-learned
//! (economics first), and only then breaks ties on AS-path length —
//! which can select *longer* paths than the shortest valley-free one.
//! This module computes the stable Gao–Rexford routing outcome exactly,
//! letting us quantify how much extra path inflation the preference
//! rules add on top of valley-freeness (the `bgp-vs-policy` experiment).
//!
//! Model, per destination `d`:
//!
//! 1. **Customer routes** ("up" phase): `d` announces its prefix to all
//!    neighbors; routes re-announced by each AS to its providers (and
//!    siblings). An AS `u` holds a customer route iff `d` is in `u`'s
//!    customer cone; the best one is the shortest such path.
//! 2. **Peer routes**: each AS offers its best *customer* route to its
//!    peers (settlement-free peering carries only customer traffic).
//! 3. **Provider routes** ("down" phase): each AS offers its best route
//!    of *any* class to its customers; provider routes chain downward.
//!
//! Selection at each AS: customer > peer > provider, then shortest
//! AS-path. Sibling links carry full transit in both directions and
//! preserve the route's class. Because the annotated topologies here
//! have acyclic provider–customer relationships, this system has the
//! unique stable solution computed below (Gao–Rexford convergence).

use crate::rel::AsAnnotations;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use topogen_graph::{Graph, NodeId, UNREACHED};

/// Class of the route an AS selected toward some destination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RouteClass {
    /// The AS *is* the destination.
    SelfRoute,
    /// Learned from a customer (or the destination itself): most
    /// preferred.
    Customer,
    /// Learned from a peer.
    Peer,
    /// Learned from a provider: least preferred.
    Provider,
}

/// The routes every AS selects toward one destination.
#[derive(Clone, Debug)]
pub struct RoutesToDest {
    /// The destination.
    pub dest: NodeId,
    /// Selected route class per source (`None` = no route).
    pub class: Vec<Option<RouteClass>>,
    /// AS-path length per source (`UNREACHED` = no route).
    pub len: Vec<u32>,
}

/// Compute the stable Gao–Rexford routes from every AS toward `dest`.
pub fn routes_to(g: &Graph, ann: &AsAnnotations, dest: NodeId) -> RoutesToDest {
    let n = g.node_count();
    let inf = UNREACHED;
    // Per-class best lengths.
    let mut cust = vec![inf; n];
    let mut peer = vec![inf; n];
    let mut prov = vec![inf; n];

    // Phase 1 — customer routes: Dijkstra (unit weights ⇒ BFS with a
    // heap for determinism with sibling re-entries) from `dest` along
    // customer→provider and sibling edges.
    let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
    cust[dest as usize] = 0;
    heap.push(Reverse((0, dest)));
    while let Some(Reverse((dl, u))) = heap.pop() {
        if dl > cust[u as usize] {
            continue;
        }
        for &w in g.neighbors(u) {
            // Route moves u → w when w is a provider or sibling of u
            // (u announces to its providers and siblings).
            let uphill = ann
                .get(g, u, w)
                .map(|r| {
                    r.provider(u.min(w), u.max(w)) == Some(w)
                        || r == crate::rel::Relationship::Sibling
                })
                .unwrap_or(false);
            if uphill && dl + 1 < cust[w as usize] {
                cust[w as usize] = dl + 1;
                heap.push(Reverse((dl + 1, w)));
            }
        }
    }

    // Phase 2 — peer routes: one hop across peer links from the best
    // customer route (peers only exchange customer routes). Siblings
    // also relay peer routes (same organization), handled by a short
    // relaxation over sibling edges.
    for u in 0..n as NodeId {
        for &w in g.neighbors(u) {
            if ann.is_peer(g, u, w) && cust[w as usize] != inf {
                let cand = cust[w as usize] + 1;
                if cand < peer[u as usize] {
                    peer[u as usize] = cand;
                }
            }
        }
    }
    relax_siblings(g, ann, &mut peer);

    // Phase 3 — provider routes: each AS offers best-of-any-class to its
    // customers; lengths chain, so Dijkstra over provider→customer and
    // sibling edges seeded by every AS's best up-route.
    let mut heap: BinaryHeap<Reverse<(u32, NodeId)>> = BinaryHeap::new();
    for u in 0..n {
        let best_up = cust[u].min(peer[u]);
        if best_up != inf {
            // u offers best_up to customers: the customer's provider
            // route is best_up + 1, seeded lazily below via edges.
            heap.push(Reverse((best_up, u as NodeId)));
        }
    }
    // dist[u] in this phase = the best length u can OFFER downward.
    let mut offer: Vec<u32> = (0..n).map(|u| cust[u].min(peer[u])).collect();
    while let Some(Reverse((dl, u))) = heap.pop() {
        if dl > offer[u as usize] {
            continue;
        }
        for &w in g.neighbors(u) {
            // Offer moves u → w when u is a provider or sibling of w.
            let downhill = ann
                .get(g, u, w)
                .map(|r| {
                    r.customer(u.min(w), u.max(w)) == Some(w)
                        || r == crate::rel::Relationship::Sibling
                })
                .unwrap_or(false);
            if downhill && dl + 1 < offer[w as usize] {
                offer[w as usize] = dl + 1;
                prov[w as usize] = dl + 1;
                heap.push(Reverse((dl + 1, w)));
            }
        }
    }
    // `prov` currently includes chains that may pass through better
    // classes; keep it only where it is a genuine provider-learned
    // route (offer < best_up means it arrived from above).
    for u in 0..n {
        let best_up = cust[u].min(peer[u]);
        if prov[u] >= best_up {
            prov[u] = inf;
        }
    }

    // Selection: class preference first, then (within class) the
    // shortest length — already per-class minimal.
    let mut class = vec![None; n];
    let mut len = vec![inf; n];
    for u in 0..n {
        if u == dest as usize {
            class[u] = Some(RouteClass::SelfRoute);
            len[u] = 0;
        } else if cust[u] != inf {
            class[u] = Some(RouteClass::Customer);
            len[u] = cust[u];
        } else if peer[u] != inf {
            class[u] = Some(RouteClass::Peer);
            len[u] = peer[u];
        } else if prov[u] != inf {
            class[u] = Some(RouteClass::Provider);
            len[u] = prov[u];
        }
    }
    RoutesToDest { dest, class, len }
}

/// Propagate a class's best lengths across sibling links (siblings share
/// routes freely; a couple of passes suffice for the short sibling
/// chains our models produce).
fn relax_siblings(g: &Graph, ann: &AsAnnotations, dist: &mut [u32]) {
    for _ in 0..3 {
        let mut changed = false;
        for e in g.edges() {
            if ann.by_index(g.edge_index(e.a, e.b).unwrap()) == crate::rel::Relationship::Sibling {
                let (da, db) = (dist[e.a as usize], dist[e.b as usize]);
                if da != UNREACHED && da + 1 < db {
                    dist[e.b as usize] = da + 1;
                    changed = true;
                }
                let (da, db) = (dist[e.a as usize], dist[e.b as usize]);
                if db != UNREACHED && db + 1 < da {
                    dist[e.a as usize] = db + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
}

/// Path-length matrix of the stable BGP outcome: `lens[d][u]` is the
/// AS-path length of `u`'s selected route to `d` (`UNREACHED` if none).
pub fn all_route_lengths(g: &Graph, ann: &AsAnnotations) -> Vec<Vec<u32>> {
    (0..g.node_count() as NodeId)
        .map(|d| routes_to(g, ann, d).len)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::annotations_from_pairs;
    use crate::valley::policy_distances;

    /// Two-tier: 0–1 peered cores; 0 provides for 2, 3; 1 provides for 4.
    fn two_tier() -> (Graph, AsAnnotations) {
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (1, 4)]);
        let ann = annotations_from_pairs(&g, &[(0, 2), (0, 3), (1, 4)], &[(0, 1)], &[]);
        (g, ann)
    }

    #[test]
    fn customer_routes_up_the_cone() {
        let (g, ann) = two_tier();
        let r = routes_to(&g, &ann, 2);
        // 0 learns 2's prefix from its customer: class Customer, len 1.
        assert_eq!(r.class[0], Some(RouteClass::Customer));
        assert_eq!(r.len[0], 1);
        // 1 learns it across the peering: class Peer, len 2.
        assert_eq!(r.class[1], Some(RouteClass::Peer));
        assert_eq!(r.len[1], 2);
        // 3 learns it from its provider 0: class Provider, len 2.
        assert_eq!(r.class[3], Some(RouteClass::Provider));
        assert_eq!(r.len[3], 2);
        // 4 gets it from provider 1 (which used the peering): len 3.
        assert_eq!(r.class[4], Some(RouteClass::Provider));
        assert_eq!(r.len[4], 3);
    }

    #[test]
    fn valley_free_reachability_matches_bgp() {
        let (g, ann) = two_tier();
        for d in 0..5u32 {
            let bgp = routes_to(&g, &ann, d);
            for u in 0..5u32 {
                let vf = policy_distances(&g, &ann, u)[d as usize];
                assert_eq!(
                    vf == UNREACHED,
                    bgp.len[u as usize] == UNREACHED,
                    "reachability mismatch {u}→{d}"
                );
                if vf != UNREACHED {
                    assert!(
                        bgp.len[u as usize] >= vf,
                        "BGP beat the shortest valley-free path {u}→{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn preference_can_inflate_paths() {
        // Classic Gao–Rexford inflation: 3 is a customer of both 1 and 2;
        // 1 peers with the destination 0's provider chain in one hop,
        // while a longer customer route exists via 2's cone.
        //   0 customer of 4; 4 customer of 2; 2 provider chain above 3.
        //   Also 1 provider of 3, and 1 peers with 0.
        // From 3: customer route? 0 is not below 3 — no. Peer? none at 3.
        // Provider routes: via 1 (1 peers 0 → len 2, so 3's len 3) or
        // via 2 (2's customer cone holds 4, 0 → len 2, so 3's len 3).
        // Both length 3 — now shorten the peer side: let 3 ALSO peer
        // with 4 (customer route at 4 to 0 of len 1): peer route len 2
        // beats provider len 3; but prefer-customer still rules if a
        // customer route existed. Verify classes select correctly.
        let g = Graph::from_edges(5, vec![(0, 4), (4, 2), (2, 3), (1, 3), (0, 1), (3, 4)]);
        let ann = annotations_from_pairs(
            &g,
            &[(4, 0), (2, 4), (2, 3), (1, 3)],
            &[(0, 1), (3, 4)],
            &[],
        );
        let r = routes_to(&g, &ann, 0);
        // 3's best: peer route via 4 (4 holds customer route len 1).
        assert_eq!(r.class[3], Some(RouteClass::Peer));
        assert_eq!(r.len[3], 2);
        // And it is at least the valley-free distance.
        let vf = policy_distances(&g, &ann, 3)[0];
        assert!(r.len[3] >= vf);
    }

    #[test]
    fn prefer_customer_over_shorter_peer() {
        // 2 has a 1-hop peer route to 0 and a 2-hop customer route
        // (through customer 3 that is a provider of 0): economics wins.
        let g = Graph::from_edges(4, vec![(0, 2), (2, 3), (3, 0), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(2, 3), (3, 0)], &[(0, 2), (1, 2)], &[]);
        let r = routes_to(&g, &ann, 0);
        assert_eq!(r.class[2], Some(RouteClass::Customer));
        assert_eq!(r.len[2], 2, "customer route preferred despite peer len 1");
    }

    #[test]
    fn siblings_carry_transit() {
        // 0 prov 1; 1 sibling 2; 2 prov 3: 3 reaches 0 through the
        // sibling pair.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 3)], &[], &[(1, 2)]);
        let r = routes_to(&g, &ann, 0);
        assert_eq!(r.len[3], 3);
        let r3 = routes_to(&g, &ann, 3);
        assert_eq!(r3.len[0], 3);
    }

    #[test]
    fn no_route_through_valley() {
        // 0 prov 1, 2 prov 1: no route between 0 and 2.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let r = routes_to(&g, &ann, 2);
        assert_eq!(r.len[0], UNREACHED);
        assert_eq!(r.class[0], None);
    }

    #[test]
    fn all_lengths_matrix_shape() {
        let (g, ann) = two_tier();
        let m = all_route_lengths(&g, &ann);
        assert_eq!(m.len(), 5);
        for (d, row) in m.iter().enumerate() {
            assert_eq!(row.len(), 5);
            assert_eq!(row[d], 0);
        }
    }
}
