//! AS relationship vocabulary and per-edge annotation tables.

use topogen_graph::{Graph, NodeId};

/// Commercial relationship carried by one AS-level link, expressed
/// relative to the link's *normalized* endpoints `(a, b)` with `a < b`
/// (matching [`Graph::edges`] order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `a` is a customer of `b` (`b` provides transit to `a`).
    CustomerOfB,
    /// `a` is a provider of `b`.
    ProviderOfB,
    /// Settlement-free peering: traffic between the two ASes' customers
    /// only.
    Peer,
    /// Sibling ASes (same organization): transit in both directions.
    Sibling,
}

impl Relationship {
    /// The provider side of the link, if it is a provider–customer link.
    pub fn provider(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        match self {
            Relationship::CustomerOfB => Some(b),
            Relationship::ProviderOfB => Some(a),
            _ => None,
        }
    }

    /// The customer side of the link, if it is a provider–customer link.
    pub fn customer(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        match self {
            Relationship::CustomerOfB => Some(a),
            Relationship::ProviderOfB => Some(b),
            _ => None,
        }
    }
}

/// Per-edge relationship annotations for an AS graph, aligned with the
/// graph's normalized edge order.
#[derive(Clone, Debug)]
pub struct AsAnnotations {
    rels: Vec<Relationship>,
}

impl AsAnnotations {
    /// Build from a relationship per edge (same order as
    /// [`Graph::edges`]).
    ///
    /// # Panics
    /// Panics if the count does not match the graph's edge count.
    pub fn new(g: &Graph, rels: Vec<Relationship>) -> Self {
        assert_eq!(
            rels.len(),
            g.edge_count(),
            "one relationship per edge required"
        );
        AsAnnotations { rels }
    }

    /// Annotation of the edge with the given index.
    pub fn by_index(&self, idx: usize) -> Relationship {
        self.rels[idx]
    }

    /// Annotation of edge `(u, v)`; `None` if no such edge.
    pub fn get(&self, g: &Graph, u: NodeId, v: NodeId) -> Option<Relationship> {
        g.edge_index(u, v).map(|i| self.rels[i])
    }

    /// Whether the step `from → to` goes *up* (customer to provider or
    /// sibling).
    pub fn is_uphill(&self, g: &Graph, from: NodeId, to: NodeId) -> bool {
        match self.get(g, from, to) {
            Some(r) => {
                r.provider(from.min(to), from.max(to)) == Some(to) || r == Relationship::Sibling
            }
            None => false,
        }
    }

    /// Whether the step `from → to` goes *down* (provider to customer or
    /// sibling).
    pub fn is_downhill(&self, g: &Graph, from: NodeId, to: NodeId) -> bool {
        match self.get(g, from, to) {
            Some(r) => {
                r.customer(from.min(to), from.max(to)) == Some(to) || r == Relationship::Sibling
            }
            None => false,
        }
    }

    /// Whether `(u, v)` is a peering link.
    pub fn is_peer(&self, g: &Graph, u: NodeId, v: NodeId) -> bool {
        self.get(g, u, v) == Some(Relationship::Peer)
    }

    /// Providers of node `v`.
    pub fn providers_of(&self, g: &Graph, v: NodeId) -> Vec<NodeId> {
        g.neighbors(v)
            .iter()
            .copied()
            .filter(|&w| {
                self.get(g, v, w)
                    .and_then(|r| r.provider(v.min(w), v.max(w)))
                    == Some(w)
            })
            .collect()
    }

    /// Customers of node `v`.
    pub fn customers_of(&self, g: &Graph, v: NodeId) -> Vec<NodeId> {
        g.neighbors(v)
            .iter()
            .copied()
            .filter(|&w| {
                self.get(g, v, w)
                    .and_then(|r| r.customer(v.min(w), v.max(w)))
                    == Some(w)
            })
            .collect()
    }

    /// Count of each relationship kind `(provider_customer, peer,
    /// sibling)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut pc = 0;
        let mut peer = 0;
        let mut sib = 0;
        for r in &self.rels {
            match r {
                Relationship::CustomerOfB | Relationship::ProviderOfB => pc += 1,
                Relationship::Peer => peer += 1,
                Relationship::Sibling => sib += 1,
            }
        }
        (pc, peer, sib)
    }

    /// Agreement fraction against another annotation table over the same
    /// graph: 1.0 means identical classification of every link.
    /// Provider–customer links must also agree on orientation.
    pub fn agreement(&self, other: &AsAnnotations) -> f64 {
        assert_eq!(self.rels.len(), other.rels.len());
        if self.rels.is_empty() {
            return 1.0;
        }
        let same = self
            .rels
            .iter()
            .zip(&other.rels)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.rels.len() as f64
    }
}

/// Convenience: build annotations from explicit directed provider pairs.
/// `provider_customer` lists `(provider, customer)` pairs; `peers` and
/// `siblings` list unordered pairs. Every edge of `g` must be covered
/// exactly once.
///
/// # Panics
/// Panics if a listed pair is not an edge, or an edge is left uncovered.
pub fn annotations_from_pairs(
    g: &Graph,
    provider_customer: &[(NodeId, NodeId)],
    peers: &[(NodeId, NodeId)],
    siblings: &[(NodeId, NodeId)],
) -> AsAnnotations {
    let mut rels: Vec<Option<Relationship>> = vec![None; g.edge_count()];
    for &(p, c) in provider_customer {
        let idx = g
            .edge_index(p, c)
            .unwrap_or_else(|| panic!("({p}, {c}) is not an edge"));
        let rel = if p < c {
            Relationship::ProviderOfB
        } else {
            Relationship::CustomerOfB
        };
        assert!(rels[idx].is_none(), "edge ({p}, {c}) annotated twice");
        rels[idx] = Some(rel);
    }
    for &(u, v) in peers {
        let idx = g
            .edge_index(u, v)
            .unwrap_or_else(|| panic!("({u}, {v}) is not an edge"));
        assert!(rels[idx].is_none(), "edge ({u}, {v}) annotated twice");
        rels[idx] = Some(Relationship::Peer);
    }
    for &(u, v) in siblings {
        let idx = g
            .edge_index(u, v)
            .unwrap_or_else(|| panic!("({u}, {v}) is not an edge"));
        assert!(rels[idx].is_none(), "edge ({u}, {v}) annotated twice");
        rels[idx] = Some(Relationship::Sibling);
    }
    let rels: Vec<Relationship> = rels
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("edge index {i} left unannotated")))
        .collect();
    AsAnnotations { rels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_graph::Graph;

    /// 0 is provider of 1 and 2; 1–2 peer.
    fn small() -> (Graph, AsAnnotations) {
        let g = Graph::from_edges(3, vec![(0, 1), (0, 2), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (0, 2)], &[(1, 2)], &[]);
        (g, ann)
    }

    #[test]
    fn provider_customer_orientation() {
        let (g, ann) = small();
        assert_eq!(ann.get(&g, 0, 1), Some(Relationship::ProviderOfB));
        assert!(ann.is_uphill(&g, 1, 0));
        assert!(!ann.is_uphill(&g, 0, 1));
        assert!(ann.is_downhill(&g, 0, 1));
        assert!(ann.is_peer(&g, 1, 2));
        assert!(!ann.is_peer(&g, 0, 1));
    }

    #[test]
    fn providers_and_customers() {
        let (g, ann) = small();
        assert_eq!(ann.providers_of(&g, 1), vec![0]);
        assert_eq!(ann.providers_of(&g, 0), Vec::<NodeId>::new());
        let mut cust = ann.customers_of(&g, 0);
        cust.sort_unstable();
        assert_eq!(cust, vec![1, 2]);
    }

    #[test]
    fn sibling_counts_both_ways() {
        let g = Graph::from_edges(2, vec![(0, 1)]);
        let ann = annotations_from_pairs(&g, &[], &[], &[(0, 1)]);
        assert!(ann.is_uphill(&g, 0, 1));
        assert!(ann.is_uphill(&g, 1, 0));
        assert!(ann.is_downhill(&g, 0, 1));
        assert_eq!(ann.counts(), (0, 0, 1));
    }

    #[test]
    fn counts_mixed() {
        let (_, ann) = small();
        assert_eq!(ann.counts(), (2, 1, 0));
    }

    #[test]
    fn agreement_metric() {
        let (g, ann) = small();
        let flipped = annotations_from_pairs(&g, &[(1, 0), (0, 2)], &[(1, 2)], &[]);
        let a = ann.agreement(&flipped);
        assert!((a - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(ann.agreement(&ann), 1.0);
    }

    #[test]
    #[should_panic]
    fn uncovered_edge_panics() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let _ = annotations_from_pairs(&g, &[(0, 1)], &[], &[]);
    }

    #[test]
    #[should_panic]
    fn double_annotation_panics() {
        let g = Graph::from_edges(2, vec![(0, 1)]);
        let _ = annotations_from_pairs(&g, &[(0, 1)], &[(0, 1)], &[]);
    }

    #[test]
    fn relationship_provider_helper() {
        assert_eq!(Relationship::CustomerOfB.provider(2, 5), Some(5));
        assert_eq!(Relationship::ProviderOfB.provider(2, 5), Some(2));
        assert_eq!(Relationship::Peer.provider(2, 5), None);
        assert_eq!(Relationship::CustomerOfB.customer(2, 5), Some(2));
    }
}
