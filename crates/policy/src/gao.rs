//! Gao's AS relationship inference \[18\], reconstructing
//! provider–customer / peer / sibling annotations from observed AS paths.
//!
//! The paper uses "the technique proposed by Gao to infer the
//! relationships between ASs" from BGP routing tables (Appendix E). The
//! algorithm rests on the valley-free property: every legitimate path
//! consists of an uphill segment followed by an optional peer link and a
//! downhill segment, with the path's *top provider* — its highest-degree
//! AS — at the apex. Walking each observed path therefore yields provider
//! votes for every traversed link:
//!
//! 1. **Orientation** (Gao's basic algorithm): for each path, find the
//!    highest-degree AS; links before it vote "right side is provider",
//!    links after it vote "left side is provider".
//! 2. **Siblings**: links with conflicting votes (each side provides
//!    transit for the other in different paths) are siblings.
//! 3. **Peers** (Gao's refined heuristic): a link that only ever appears
//!    adjacent to a path's apex, whose endpoints have comparable degree
//!    (ratio below `R`), never provides transit — reclassify as peer.
//!
//! Links never observed in any path fall back to degree comparison.

use crate::rel::{AsAnnotations, Relationship};
use std::collections::HashMap;
use topogen_graph::{Graph, NodeId};

/// Tunables for the inference.
#[derive(Clone, Copy, Debug)]
pub struct GaoConfig {
    /// Peer degree-ratio bound `R`: endpoints of a peer candidate must
    /// have degrees within a factor of `R` of each other (Gao's paper
    /// uses values around 60 for equal-size peers; smaller is stricter).
    pub peer_degree_ratio: f64,
    /// Minimum conflicting votes on each side before declaring a sibling
    /// (Gao's `L`); guards against single-path noise.
    pub sibling_vote_threshold: u32,
}

impl Default for GaoConfig {
    fn default() -> Self {
        GaoConfig {
            peer_degree_ratio: 10.0,
            sibling_vote_threshold: 1,
        }
    }
}

/// Infer per-edge relationships for `g` from observed AS `paths`.
///
/// Paths must be node sequences over `g`; consecutive nodes that are not
/// adjacent in `g` are skipped defensively (measurement noise).
pub fn infer_relationships(g: &Graph, paths: &[Vec<NodeId>], config: &GaoConfig) -> AsAnnotations {
    let degree: Vec<usize> = g.degrees();
    // Per edge: votes that a (resp. b) is the provider, and occurrence
    // counts split into apex-adjacent vs interior.
    #[derive(Default, Clone)]
    struct Tally {
        /// Provider votes from *interior* (non-apex-adjacent) positions —
        /// positions where the link demonstrably carries transit.
        a_provider_interior: u32,
        b_provider_interior: u32,
        /// Provider votes from apex-adjacent positions (weak evidence: a
        /// peer link at the apex also lands here).
        a_provider_apex: u32,
        b_provider_apex: u32,
    }
    let mut tally: HashMap<usize, Tally> = HashMap::new();

    for path in paths {
        if path.len() < 2 {
            continue;
        }
        // Apex: highest degree, ties to the earlier position.
        let j = (0..path.len())
            .max_by_key(|&i| (degree[path[i] as usize], usize::MAX - i))
            .unwrap();
        for i in 0..path.len() - 1 {
            let (u, v) = (path[i], path[i + 1]);
            let Some(idx) = g.edge_index(u, v) else {
                continue;
            };
            let t = tally.entry(idx).or_default();
            // Uphill before the apex: the right node provides for the
            // left. Downhill from the apex on: left provides for right.
            let provider = if i < j { v } else { u };
            let a = u.min(v);
            let apex_adjacent = i + 1 == j || i == j;
            match (provider == a, apex_adjacent) {
                (true, false) => t.a_provider_interior += 1,
                (false, false) => t.b_provider_interior += 1,
                (true, true) => t.a_provider_apex += 1,
                (false, true) => t.b_provider_apex += 1,
            }
        }
    }

    let rels: Vec<Relationship> = g
        .edges()
        .iter()
        .enumerate()
        .map(|(idx, e)| {
            let (da, db) = (degree[e.a as usize] as f64, degree[e.b as usize] as f64);
            let ratio_ok = {
                let hi = da.max(db).max(1.0);
                let lo = da.min(db).max(1.0);
                hi / lo <= config.peer_degree_ratio
            };
            match tally.get(&idx) {
                None => {
                    // Unobserved: degree heuristic. Comparable degrees →
                    // peer; otherwise the bigger AS is the provider.
                    if ratio_ok {
                        Relationship::Peer
                    } else if da > db {
                        Relationship::ProviderOfB
                    } else {
                        Relationship::CustomerOfB
                    }
                }
                Some(t) => {
                    let thr = config.sibling_vote_threshold;
                    let interior = t.a_provider_interior + t.b_provider_interior;
                    if t.a_provider_interior >= thr && t.b_provider_interior >= thr {
                        // Transit carried in both orientations: siblings.
                        Relationship::Sibling
                    } else if interior == 0 && ratio_ok {
                        // Only ever seen at a path apex, similar degrees:
                        // a settlement-free peer link.
                        Relationship::Peer
                    } else {
                        // Orient by transit evidence, trusting interior
                        // votes over apex-adjacent ones.
                        let va = 2 * t.a_provider_interior + t.a_provider_apex;
                        let vb = 2 * t.b_provider_interior + t.b_provider_apex;
                        if va > vb {
                            Relationship::ProviderOfB
                        } else if vb > va {
                            Relationship::CustomerOfB
                        } else if da >= db {
                            Relationship::ProviderOfB
                        } else {
                            Relationship::CustomerOfB
                        }
                    }
                }
            }
        })
        .collect();
    AsAnnotations::new(g, rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::annotations_from_pairs;

    /// A small two-level hierarchy:
    /// providers 0, 1 (peers with each other, high degree);
    /// 0 provides for 2, 3; 1 provides for 4, 5.
    fn two_tier() -> Graph {
        Graph::from_edges(6, vec![(0, 1), (0, 2), (0, 3), (1, 4), (1, 5)])
    }

    fn paths_for_two_tier() -> Vec<Vec<NodeId>> {
        // Full mesh of customer-to-customer routes through the core, as a
        // route-views-like table would contain.
        vec![
            vec![2, 0, 3],
            vec![3, 0, 2],
            vec![2, 0, 1, 4],
            vec![2, 0, 1, 5],
            vec![3, 0, 1, 4],
            vec![3, 0, 1, 5],
            vec![4, 1, 0, 2],
            vec![4, 1, 5],
            vec![5, 1, 4],
            vec![5, 1, 0, 3],
        ]
    }

    #[test]
    fn recovers_two_tier_orientation() {
        let g = two_tier();
        let inferred = infer_relationships(&g, &paths_for_two_tier(), &GaoConfig::default());
        // Customer links correctly oriented.
        for (p, c) in [(0u32, 2u32), (0, 3), (1, 4), (1, 5)] {
            let r = inferred.get(&g, p, c).unwrap();
            assert_eq!(
                r.provider(p.min(c), p.max(c)),
                Some(p),
                "expected {p} to be provider of {c}, got {r:?}"
            );
        }
    }

    #[test]
    fn recovers_core_peer_link() {
        let g = two_tier();
        let inferred = infer_relationships(&g, &paths_for_two_tier(), &GaoConfig::default());
        // 0–1 only ever appears at the apex and the degrees match: peer.
        assert_eq!(inferred.get(&g, 0, 1), Some(Relationship::Peer));
    }

    #[test]
    fn agreement_with_ground_truth() {
        let g = two_tier();
        let truth = annotations_from_pairs(&g, &[(0, 2), (0, 3), (1, 4), (1, 5)], &[(0, 1)], &[]);
        let inferred = infer_relationships(&g, &paths_for_two_tier(), &GaoConfig::default());
        assert_eq!(inferred.agreement(&truth), 1.0);
    }

    #[test]
    fn sibling_from_conflicting_transit() {
        // 0 and 1 are siblings carrying transit both ways between big
        // providers 2 and 3 (degree boosted with extra leaves).
        let g = Graph::from_edges(
            8,
            vec![(0, 1), (0, 2), (1, 3), (2, 4), (2, 5), (3, 6), (3, 7)],
        );
        let paths = vec![
            vec![4, 2, 0, 1, 3, 6], // through 0→1
            vec![6, 3, 1, 0, 2, 4], // through 1→0
            vec![5, 2, 0, 1, 3, 7],
            vec![7, 3, 1, 0, 2, 5],
        ];
        let inferred = infer_relationships(&g, &paths, &GaoConfig::default());
        assert_eq!(inferred.get(&g, 0, 1), Some(Relationship::Sibling));
    }

    #[test]
    fn unobserved_edges_fall_back_to_degree() {
        // Star with an unobserved spoke: hub (degree 4) vs leaf (degree
        // 1) → hub inferred as provider.
        let g = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let paths = vec![vec![1, 0, 2], vec![2, 0, 3]];
        let cfg = GaoConfig {
            peer_degree_ratio: 2.0,
            ..Default::default()
        };
        let inferred = infer_relationships(&g, &paths, &cfg);
        let r = inferred.get(&g, 0, 4).unwrap();
        assert_eq!(r.provider(0, 4), Some(0));
    }

    #[test]
    fn empty_paths_all_degree_fallback() {
        let g = Graph::from_edges(3, vec![(0, 1), (0, 2)]);
        let inferred = infer_relationships(
            &g,
            &[],
            &GaoConfig {
                peer_degree_ratio: 1.5,
                ..Default::default()
            },
        );
        // Hub degree 2 vs leaves degree 1: ratio 2 > 1.5 → provider.
        let r = inferred.get(&g, 0, 1).unwrap();
        assert_eq!(r.provider(0, 1), Some(0));
    }

    #[test]
    fn noisy_nonadjacent_hops_skipped() {
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        // Path with a bogus hop 0→2 (not an edge): must not panic.
        let paths = vec![vec![0, 2, 1]];
        let _ = infer_relationships(&g, &paths, &GaoConfig::default());
    }
}
