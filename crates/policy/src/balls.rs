//! Policy-induced ball growing (Appendix E).
//!
//! "In computing a policy-induced ball of radius h, we include all nodes
//! to whom the policy path from the center of the ball is less than or
//! equal to h, and only include links that lie on policy-compliant paths
//! to those nodes."

use crate::rel::AsAnnotations;
use crate::valley::{policy_shortest_path_dag, state_node, PolicyDag};
use topogen_graph::subgraph::SubgraphMap;
use topogen_graph::{Graph, GraphBuilder, NodeId, UNREACHED};

/// Nodes within policy distance `h` of `center`, sorted by (distance, id).
pub fn policy_ball_nodes(g: &Graph, ann: &AsAnnotations, center: NodeId, h: u32) -> Vec<NodeId> {
    let dag = policy_shortest_path_dag(g, ann, center);
    let mut nodes: Vec<NodeId> = (0..g.node_count() as NodeId)
        .filter(|&v| dag.node_dist[v as usize] <= h)
        .collect();
    nodes.sort_by_key(|&v| (dag.node_dist[v as usize], v));
    nodes
}

/// The policy-induced ball of radius `h` around `center`: the included
/// nodes plus only the links lying on shortest policy-compliant paths
/// from the center to those nodes. Node 0 of the result is the center.
pub fn policy_ball(g: &Graph, ann: &AsAnnotations, center: NodeId, h: u32) -> (Graph, SubgraphMap) {
    let dag = policy_shortest_path_dag(g, ann, center);
    policy_ball_from_dag(g, &dag, h)
}

/// Ball extraction from a precomputed DAG (lets callers grow radii
/// without re-running the BFS).
pub fn policy_ball_from_dag(g: &Graph, dag: &PolicyDag, h: u32) -> (Graph, SubgraphMap) {
    let n = g.node_count();
    let mut keep: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| dag.node_dist[v as usize] <= h)
        .collect();
    keep.sort_by_key(|&v| (dag.node_dist[v as usize], v));
    let mut idx = vec![u32::MAX; n];
    for (i, &v) in keep.iter().enumerate() {
        idx[v as usize] = i as u32;
    }
    // Collect state-DAG edges whose endpoints are both within the ball:
    // walking predecessors from each included node's terminal states
    // marks exactly the links on shortest policy paths. A simple reverse
    // reachability over the state DAG suffices: mark terminal states of
    // included nodes, propagate marks to predecessors, and record each
    // traversed (pred, succ) as an underlying edge.
    let ns = dag.dist.len();
    let mut marked = vec![false; ns];
    for &v in &keep {
        for s in dag.terminal_states(v) {
            marked[s as usize] = true;
        }
    }
    // States in reverse BFS order: propagate.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for &s in dag.order.iter().rev() {
        if !marked[s as usize] || dag.dist[s as usize] == UNREACHED {
            continue;
        }
        let v = state_node(s);
        for &p in &dag.preds[s as usize] {
            marked[p as usize] = true;
            let u = state_node(p);
            edges.push((u, v));
        }
    }
    let mut b = GraphBuilder::new(keep.len());
    for (u, v) in edges {
        let (iu, iv) = (idx[u as usize], idx[v as usize]);
        debug_assert!(iu != u32::MAX && iv != u32::MAX);
        if iu != iv {
            b.add_edge(iu, iv);
        }
    }
    (b.build(), SubgraphMap::from_originals(keep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rel::annotations_from_pairs;

    /// Figure 15's graph with the orientation that reproduces the paper's
    /// stated ball memberships (see `valley::tests::figure15_paper`).
    fn figure15() -> (Graph, AsAnnotations) {
        let g = Graph::from_edges(
            8,
            vec![
                (0, 1),
                (0, 2),
                (0, 7),
                (1, 4),
                (2, 3),
                (3, 4),
                (4, 6),
                (4, 5),
            ],
        );
        let ann = annotations_from_pairs(
            &g,
            &[
                (0, 1),
                (0, 2),
                (0, 7),
                (4, 1),
                (2, 3),
                (3, 4),
                (4, 6),
                (4, 5),
            ],
            &[],
            &[],
        );
        (g, ann)
    }

    #[test]
    fn figure15_radius_3_membership() {
        // Appendix E: "a ball of radius 3 includes nodes A, B, C, D, E, G
        // and H" — in our ids {0,1,2,3,4,6,7} — "and links (A,B), (A,C),
        // (A,H), (B,E), (C,D) and (E,G)". With the recoverable
        // orientation, E is reached through D (A→C→D→E), so the link set
        // is (A,B),(A,C),(A,H),(C,D),(D,E) and E's children enter at 4.
        let (g, ann) = figure15();
        let (ball, map) = policy_ball(&g, &ann, 0, 3);
        let mut members: Vec<NodeId> = map.originals().to_vec();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3, 4, 7]);
        assert_eq!(ball.edge_count(), 5);
    }

    #[test]
    fn figure15_radius_4_adds_leaves() {
        let (g, ann) = figure15();
        let (ball, map) = policy_ball(&g, &ann, 0, 4);
        let mut members: Vec<NodeId> = map.originals().to_vec();
        members.sort_unstable();
        assert_eq!(members, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // Adds links (E,F) and (E,G).
        assert_eq!(ball.edge_count(), 7);
    }

    #[test]
    fn ball_excludes_off_path_links() {
        // Triangle: 0 provider of 1 and 2; 1–2 peer. Ball(0, 1) includes
        // nodes {0,1,2} but NOT the peer link 1–2 (it lies on no shortest
        // policy path from 0).
        let g = Graph::from_edges(3, vec![(0, 1), (0, 2), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (0, 2)], &[(1, 2)], &[]);
        let (ball, _) = policy_ball(&g, &ann, 0, 1);
        assert_eq!(ball.node_count(), 3);
        assert_eq!(ball.edge_count(), 2);
    }

    #[test]
    fn radius_zero_is_center_only() {
        let (g, ann) = figure15();
        let (ball, map) = policy_ball(&g, &ann, 3, 0);
        assert_eq!(ball.node_count(), 1);
        assert_eq!(map.to_original(0), 3);
    }

    #[test]
    fn policy_ball_nodes_sorted_by_distance() {
        let (g, ann) = figure15();
        let nodes = policy_ball_nodes(&g, &ann, 0, 4);
        let dag = crate::valley::policy_shortest_path_dag(&g, &ann, 0);
        let dists: Vec<u32> = nodes.iter().map(|&v| dag.node_dist[v as usize]).collect();
        assert!(dists.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(nodes[0], 0);
    }

    #[test]
    fn unreachable_nodes_never_included() {
        // 0 prov 1, 2 prov 1: node 2 invisible from 0 at any radius.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let (ball, map) = policy_ball(&g, &ann, 0, 10);
        assert_eq!(ball.node_count(), 2);
        assert!(map.originals().iter().all(|&v| v != 2));
    }
}
