//! # topogen-policy
//!
//! Policy routing for annotated AS topologies — the paper's machinery for
//! making measured-graph metrics realistic (§3.2.1, Appendix E).
//!
//! The Internet does not route along shortest paths: BGP policies derived
//! from commercial relationships constrain which paths are usable. The
//! paper models this with the standard *valley-free* rule over
//! provider–customer / peer / sibling annotated AS graphs (after Gao
//! \[18\] and \[42, 21\]): once a path has traversed a provider→customer
//! or peer link it may never climb back up, and at most one peer link may
//! appear, at the apex.
//!
//! Modules:
//!
//! * [`rel`] — the relationship vocabulary ([`Relationship`]) and
//!   per-edge annotation table ([`AsAnnotations`]).
//! * [`valley`] — valley-free shortest paths via a two-phase state
//!   machine BFS: distances, path DAGs with equal-cost path counts (the
//!   σ-weights the hierarchy analysis of §5 needs), and reachability.
//! * [`balls`] — policy-induced ball growing (Appendix E): the subgraph
//!   of nodes within policy distance `h` of a center, using only links on
//!   policy-compliant shortest paths.
//! * [`gao`] — Gao's relationship-inference algorithm \[18\],
//!   reconstructing annotations from observed AS paths.
//! * [`bgp`] — a BGP table simulator: the AS paths a vantage point's
//!   routing table would contain, generated from the annotated topology
//!   (input for [`gao`], mirroring how the paper inferred relationships
//!   from route-views tables).
//! * [`bgp_sim`] — the full Gao–Rexford route-selection model (customer
//!   > peer > provider preference with export rules), used to quantify
//!   > how closely the paper's shortest-valley-free approximation tracks
//!   > real BGP outcomes.
//! * [`overlay`] — router-level policy distances through an AS overlay
//!   (the paper's two-step RL policy path construction, Appendix E).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balls;
pub mod bgp;
pub mod bgp_sim;
pub mod gao;
pub mod overlay;
pub mod rel;
pub mod valley;

pub use rel::{AsAnnotations, Relationship};
pub use valley::{policy_distances, PolicyDag};
