//! Property-based tests for policy routing: valley-free invariants over
//! randomly annotated graphs.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use topogen_graph::bfs::distances;
use topogen_graph::{Graph, NodeId, UNREACHED};
use topogen_policy::balls::{policy_ball, policy_ball_nodes};
use topogen_policy::bgp::routing_table;
use topogen_policy::bgp_sim::routes_to;
use topogen_policy::gao::{infer_relationships, GaoConfig};
use topogen_policy::rel::{AsAnnotations, Relationship};
use topogen_policy::valley::{policy_distances, policy_shortest_path_dag};

/// A connected graph with random per-edge relationships.
fn arb_annotated() -> impl Strategy<Value = (Graph, AsAnnotations)> {
    (3usize..25, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(((next() % v) as NodeId, v as NodeId));
        }
        for _ in 0..n / 2 {
            let u = (next() % n) as NodeId;
            let v = (next() % n) as NodeId;
            if u != v {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(n, edges);
        let rels: Vec<Relationship> = g
            .edges()
            .iter()
            .map(|_| match next() % 4 {
                0 => Relationship::CustomerOfB,
                1 => Relationship::ProviderOfB,
                2 => Relationship::Peer,
                _ => Relationship::Sibling,
            })
            .collect();
        let ann = AsAnnotations::new(&g, rels);
        (g, ann)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn policy_never_beats_shortest_paths((g, ann) in arb_annotated()) {
        for src in 0..g.node_count() as NodeId {
            let plain = distances(&g, src);
            let pol = policy_distances(&g, &ann, src);
            for v in 0..g.node_count() {
                if pol[v] != UNREACHED {
                    prop_assert!(pol[v] >= plain[v]);
                }
            }
            prop_assert_eq!(pol[src as usize], 0);
        }
    }

    #[test]
    fn policy_distances_symmetric((g, ann) in arb_annotated()) {
        let n = g.node_count();
        let fields: Vec<Vec<u32>> = (0..n as NodeId)
            .map(|s| policy_distances(&g, &ann, s))
            .collect();
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(
                    fields[u][v], fields[v][u],
                    "asymmetry between {} and {}", u, v
                );
            }
        }
    }

    #[test]
    fn neighbors_reachable_one_hop_when_allowed((g, ann) in arb_annotated()) {
        // Every neighbor is reachable in exactly 1 hop: the first step of
        // a valley-free walk may be up, peer, down or sibling.
        for v in 0..g.node_count() as NodeId {
            let d = policy_distances(&g, &ann, v);
            for &w in g.neighbors(v) {
                prop_assert_eq!(d[w as usize], 1);
            }
        }
    }

    #[test]
    fn sigma_consistent_with_reachability((g, ann) in arb_annotated()) {
        let dag = policy_shortest_path_dag(&g, &ann, 0);
        for v in 0..g.node_count() as NodeId {
            if dag.node_dist[v as usize] == UNREACHED {
                prop_assert_eq!(dag.sigma_to(v), 0.0);
            } else {
                prop_assert!(dag.sigma_to(v) >= 1.0);
            }
        }
    }

    #[test]
    fn policy_balls_nested((g, ann) in arb_annotated()) {
        let mut prev: Vec<NodeId> = Vec::new();
        for h in 0..5u32 {
            let nodes = policy_ball_nodes(&g, &ann, 0, h);
            for p in &prev {
                prop_assert!(nodes.contains(p), "ball lost node {p} at h={h}");
            }
            prev = nodes;
        }
    }

    #[test]
    fn policy_ball_links_subset_of_graph((g, ann) in arb_annotated()) {
        let (ball, map) = policy_ball(&g, &ann, 0, 3);
        for e in ball.edges() {
            let (u, v) = (map.to_original(e.a), map.to_original(e.b));
            prop_assert!(g.has_edge(u, v), "phantom ball link ({u},{v})");
        }
    }

    #[test]
    fn routing_table_paths_are_valid_walks((g, ann) in arb_annotated()) {
        let table = routing_table(&g, &ann, 0);
        for path in &table {
            prop_assert_eq!(path[0], 0);
            for w in path.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            // The path length matches the policy distance (shortest).
            let d = policy_distances(&g, &ann, 0);
            let dest = *path.last().unwrap();
            prop_assert_eq!(path.len() as u32 - 1, d[dest as usize]);
        }
    }

    #[test]
    fn bgp_sim_agrees_with_valley_free_reachability((g, ann) in arb_annotated()) {
        for d in 0..g.node_count() as NodeId {
            let vf = policy_distances(&g, &ann, d);
            let bgp = routes_to(&g, &ann, d);
            for u in 0..g.node_count() {
                prop_assert_eq!(
                    vf[u] == UNREACHED,
                    bgp.len[u] == UNREACHED,
                    "reachability mismatch {}→{}", u, d
                );
                if vf[u] != UNREACHED {
                    prop_assert!(
                        bgp.len[u] >= vf[u],
                        "BGP {}→{} shorter than valley-free", u, d
                    );
                }
            }
        }
    }

    #[test]
    fn gao_always_produces_full_annotation((g, ann) in arb_annotated()) {
        let table = routing_table(&g, &ann, 0);
        let inferred = infer_relationships(&g, &table, &GaoConfig::default());
        let (pc, peer, sib) = inferred.counts();
        prop_assert_eq!(pc + peer + sib, g.edge_count());
    }
}
