//! End-to-end harness tests: the registry sweeps green on a clean
//! engine, stays green under fail-open fault injection, catches a
//! genuine injected violation with a replayable repro line, and the
//! report serializes.

use topogen_check::run::{case_seed, FailureReport};
use topogen_check::{run_checks, CheckOptions, CheckReport, ReplaySpec};
use topogen_par::faults;

fn opts(suite: Option<&str>, cases: u32) -> CheckOptions {
    CheckOptions {
        suite: suite.map(str::to_string),
        cases,
        seed: 42,
        replay: None,
    }
}

#[test]
fn all_suites_green_at_seed_42() {
    let report = run_checks(&opts(None, 2)).unwrap();
    assert!(report.suites.len() >= 7, "expected >= 7 suites");
    let failures = report.failures();
    assert!(
        report.ok(),
        "clean engine must sweep green; first failure: {} ({})",
        failures[0].2.repro,
        failures[0].2.detail
    );
    assert!(report.cases_run() >= report.suites.len() as u64);
    assert!(!report.faults_armed);
}

/// A zero-case sweep checks nothing, so it must be an option error (the
/// CLI maps it to exit 2), never a vacuous green report — and every
/// requested case must actually run, not get clamped.
#[test]
fn zero_cases_is_an_error_not_a_vacuous_pass() {
    let err = run_checks(&opts(None, 0)).expect_err("0 cases must not produce a report");
    assert!(
        err.contains("--cases") && err.contains("vacuous"),
        "error names the option and the hazard: {err}"
    );
    // The boundary case still runs exactly one case per invariant.
    let one = run_checks(&opts(None, 1)).unwrap();
    assert!(one
        .suites
        .iter()
        .flat_map(|s| &s.invariants)
        .all(|i| i.cases_run == 1));
}

/// Satellite coverage: the store/ledger consistency suite with
/// `store-write` faults armed. The store fails *open* on write faults
/// (a dropped put is a miss, never an inconsistency), so the suite must
/// stay green — and the report must record that faults were armed.
#[test]
fn store_suite_green_with_store_write_faults_armed() {
    let _guard = faults::exclusive_for_tests();
    faults::install_spec("store-write:err:0.3:7").unwrap();
    let report = run_checks(&opts(Some("store"), 3));
    faults::clear();
    let report = report.unwrap();
    assert!(report.faults_armed);
    let failures = report.failures();
    assert!(
        report.ok(),
        "fail-open write faults must not break consistency; first: {} ({})",
        failures[0].2.repro,
        failures[0].2.detail
    );
}

/// The checker checks itself: a `ledger-append` fault drops the line
/// that records a published entry — a genuine consistency violation
/// that the store suite must catch and report with a replayable
/// `TOPOGEN_CHECK` line.
#[test]
fn injected_ledger_fault_trips_store_suite_with_replayable_repro() {
    let _guard = faults::exclusive_for_tests();
    faults::install_spec("ledger-append:err:1:7").unwrap();
    let report = run_checks(&opts(Some("store"), 2));
    faults::clear();
    let report = report.unwrap();
    assert!(
        !report.ok(),
        "an always-on ledger fault must violate ledger/store consistency"
    );
    let failures = report.failures();
    let (_, _, first) = failures[0];
    assert!(
        first.repro.starts_with("TOPOGEN_CHECK=store:"),
        "repro line: {}",
        first.repro
    );

    // Replay the recorded case, faults re-armed: same violation.
    let spec = ReplaySpec::parse(first.repro.trim_start_matches("TOPOGEN_CHECK=")).unwrap();
    assert_eq!(spec.seed, first.case_seed);
    faults::install_spec("ledger-append:err:1:7").unwrap();
    let replay = run_checks(&CheckOptions {
        suite: None,
        cases: 2,
        seed: 42,
        replay: Some(spec.clone()),
    });
    faults::clear();
    let replay = replay.unwrap();
    assert_eq!(replay.cases_run(), 1, "replay runs exactly the named case");
    assert!(!replay.ok(), "replay must reproduce the violation");
    assert_eq!(replay.failures()[0].2.case_seed, spec.seed);

    // And with faults disarmed the very same case is green again — the
    // violation was the injection, not the store.
    let clean = run_checks(&CheckOptions {
        suite: None,
        cases: 2,
        seed: 42,
        replay: Some(spec),
    })
    .unwrap();
    assert!(clean.ok(), "disarmed replay must pass");
}

#[test]
fn report_serializes_with_failures_and_roundtrips() {
    let mut report = run_checks(&opts(Some("codec"), 1)).unwrap();
    // Attach a synthetic failure so the failure path serializes too.
    report.suites[0].invariants[0].failures.push(FailureReport {
        case_seed: case_seed(42, "codec", "graph-roundtrip", 0),
        detail: "synthetic".into(),
        shrink_hint: "none".into(),
        repro: "TOPOGEN_CHECK=codec:graph-roundtrip:1".into(),
    });
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert!(json.contains("\"suites\""));
    assert!(json.contains("graph-roundtrip"));
    let back: CheckReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.failure_count(), 1);
    assert_eq!(back.suites.len(), report.suites.len());
    assert_eq!(back.seed, 42);
}
