//! The check runner: derive seeded cases, run every registered
//! invariant, and produce a structured, replayable report.

use crate::invariant::Suite;
use serde::{Deserialize, Serialize};

/// Schema version of `check-report.json`.
pub const REPORT_VERSION: u32 = 1;

/// What to run and how hard.
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Restrict to one suite (`None` = all registered suites).
    pub suite: Option<String>,
    /// Cases per invariant (each invariant may cap lower).
    pub cases: u32,
    /// Master seed; every case seed is derived from it.
    pub seed: u64,
    /// Replay exactly one recorded case instead of sweeping.
    pub replay: Option<ReplaySpec>,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            suite: None,
            cases: 8,
            seed: 42,
            replay: None,
        }
    }
}

/// A parsed `TOPOGEN_CHECK=suite:invariant:seed` repro line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplaySpec {
    /// Suite name.
    pub suite: String,
    /// Invariant name within the suite.
    pub invariant: String,
    /// The exact case seed to replay.
    pub seed: u64,
}

impl ReplaySpec {
    /// Parse `suite:invariant:seed` (the payload of the env var).
    pub fn parse(s: &str) -> Result<ReplaySpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        let [suite, invariant, seed] = parts[..] else {
            return Err(format!(
                "bad TOPOGEN_CHECK '{s}': want suite:invariant:seed"
            ));
        };
        let seed = seed
            .parse::<u64>()
            .map_err(|_| format!("bad TOPOGEN_CHECK seed '{seed}': want a u64"))?;
        Ok(ReplaySpec {
            suite: suite.to_string(),
            invariant: invariant.to_string(),
            seed,
        })
    }

    /// The env-var form, `suite:invariant:seed`.
    pub fn render(&self) -> String {
        format!("{}:{}:{}", self.suite, self.invariant, self.seed)
    }
}

/// One violated case, with everything needed to replay it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FailureReport {
    /// The exact seed whose derived case violated the property.
    pub case_seed: u64,
    /// What diverged (the invariant's own diagnosis).
    pub detail: String,
    /// How to minimize the case by hand.
    pub shrink_hint: String,
    /// The one-line repro: `TOPOGEN_CHECK=suite:invariant:seed`.
    pub repro: String,
}

/// One invariant's sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InvariantReport {
    /// Invariant name.
    pub invariant: String,
    /// The claim checked.
    pub property: String,
    /// The independent oracle it was checked against.
    pub oracle: String,
    /// Cases actually run (after the invariant's own cap).
    pub cases_run: u32,
    /// Violations, in case order.
    pub failures: Vec<FailureReport>,
}

/// One suite's sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuiteReport {
    /// Suite name.
    pub suite: String,
    /// Per-invariant results, in registry order.
    pub invariants: Vec<InvariantReport>,
}

/// The whole run: `out/check-report.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CheckReport {
    /// Schema version.
    pub version: u32,
    /// Master seed the case seeds were derived from.
    pub seed: u64,
    /// Requested cases per invariant.
    pub cases: u32,
    /// Whether `TOPOGEN_FAULTS` was armed during the run (a tripped
    /// run under injection is the harness working as designed).
    pub faults_armed: bool,
    /// Per-suite results.
    pub suites: Vec<SuiteReport>,
}

impl CheckReport {
    /// No violations anywhere.
    pub fn ok(&self) -> bool {
        self.failure_count() == 0
    }

    /// Total violated cases.
    pub fn failure_count(&self) -> usize {
        self.suites
            .iter()
            .flat_map(|s| &s.invariants)
            .map(|i| i.failures.len())
            .sum()
    }

    /// Total cases run.
    pub fn cases_run(&self) -> u64 {
        self.suites
            .iter()
            .flat_map(|s| &s.invariants)
            .map(|i| i.cases_run as u64)
            .sum()
    }

    /// Every failure with its suite name, report order.
    pub fn failures(&self) -> Vec<(&str, &InvariantReport, &FailureReport)> {
        let mut out = Vec::new();
        for s in &self.suites {
            for inv in &s.invariants {
                for f in &inv.failures {
                    out.push((s.suite.as_str(), inv, f));
                }
            }
        }
        out
    }
}

/// Derive the seed for one case: a stable mix of the master seed, the
/// suite and invariant names, and the case index, so every invariant
/// sees an independent stream and a recorded seed pins its case alone.
pub fn case_seed(master: u64, suite: &str, invariant: &str, index: u32) -> u64 {
    let mut h = topogen_store::fnv::Fnv1a::new();
    h.write(suite.as_bytes());
    h.write(b":");
    h.write(invariant.as_bytes());
    h.write_u64(master);
    h.write_u64(index as u64);
    topogen_par::faults::splitmix64(h.finish())
}

/// Run the registered checks. `Err` is an option error (unknown suite
/// or invariant) — violations are *not* errors, they are the report's
/// content.
pub fn run_checks(opts: &CheckOptions) -> Result<CheckReport, String> {
    // A zero-case run checks nothing; reporting it as green would let a
    // misconfigured CI invocation pass vacuously. Option error, same
    // tier as an unknown suite name (the CLI maps both to exit 2).
    if opts.cases == 0 && opts.replay.is_none() {
        return Err("--cases must be at least 1 (0 cases would pass vacuously)".to_string());
    }
    let registry = crate::registry();
    if let Some(want) = &opts.suite {
        if !registry.iter().any(|s| s.name == want) {
            let known: Vec<&str> = registry.iter().map(|s| s.name).collect();
            return Err(format!(
                "unknown suite '{want}' (registered: {})",
                known.join(", ")
            ));
        }
    }
    if let Some(replay) = &opts.replay {
        let suite = registry
            .iter()
            .find(|s| s.name == replay.suite)
            .ok_or_else(|| format!("unknown replay suite '{}'", replay.suite))?;
        if !suite
            .invariants
            .iter()
            .any(|i| i.name() == replay.invariant)
        {
            return Err(format!(
                "unknown invariant '{}' in suite '{}'",
                replay.invariant, replay.suite
            ));
        }
    }
    let mut suites = Vec::new();
    for suite in &registry {
        if let Some(want) = &opts.suite {
            if suite.name != want {
                continue;
            }
        }
        if let Some(replay) = &opts.replay {
            if suite.name != replay.suite {
                continue;
            }
        }
        suites.push(run_suite(suite, opts));
    }
    Ok(CheckReport {
        version: REPORT_VERSION,
        seed: opts.seed,
        cases: opts.cases,
        faults_armed: topogen_par::faults::active(),
        suites,
    })
}

fn run_suite(suite: &Suite, opts: &CheckOptions) -> SuiteReport {
    let mut invariants = Vec::new();
    for inv in &suite.invariants {
        if let Some(replay) = &opts.replay {
            if inv.name() != replay.invariant {
                continue;
            }
        }
        let mut failures = Vec::new();
        let cases_run;
        match &opts.replay {
            Some(replay) => {
                // Replay: the recorded seed IS the case seed.
                cases_run = 1;
                record(&mut failures, suite.name, inv.as_ref(), replay.seed);
            }
            None => {
                // No `.max(1)` floor: `run_checks` rejects zero-case
                // runs up front, and every registered invariant
                // declares `max_cases >= 1`, so this is always >= 1.
                cases_run = opts.cases.min(inv.max_cases());
                for index in 0..cases_run {
                    let seed = case_seed(opts.seed, suite.name, inv.name(), index);
                    record(&mut failures, suite.name, inv.as_ref(), seed);
                }
            }
        }
        invariants.push(InvariantReport {
            invariant: inv.name().to_string(),
            property: inv.property().to_string(),
            oracle: inv.oracle().to_string(),
            cases_run,
            failures,
        });
    }
    SuiteReport {
        suite: suite.name.to_string(),
        invariants,
    }
}

/// Run one case, catching panics so a crashing invariant is a recorded
/// violation with a repro line, not a dead runner.
fn record(
    failures: &mut Vec<FailureReport>,
    suite: &'static str,
    inv: &dyn crate::Invariant,
    seed: u64,
) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inv.check(seed)));
    let detail = match outcome {
        Ok(Ok(())) => return,
        Ok(Err(detail)) => detail,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            format!("case panicked: {msg}")
        }
    };
    let replay = ReplaySpec {
        suite: suite.to_string(),
        invariant: inv.name().to_string(),
        seed,
    };
    failures.push(FailureReport {
        case_seed: seed,
        detail,
        shrink_hint: inv.shrink_hint().to_string(),
        repro: format!("TOPOGEN_CHECK={}", replay.render()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_spec_roundtrips() {
        let r = ReplaySpec::parse("store:gc-lru-frontier:123456789").unwrap();
        assert_eq!(r.suite, "store");
        assert_eq!(r.invariant, "gc-lru-frontier");
        assert_eq!(r.seed, 123456789);
        assert_eq!(ReplaySpec::parse(&r.render()).unwrap(), r);
        assert!(ReplaySpec::parse("no-colons").is_err());
        assert!(ReplaySpec::parse("a:b:not-a-seed").is_err());
        assert!(ReplaySpec::parse("a:b:c:d").is_err());
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        let a = case_seed(42, "kernels", "bfs-bitset-vs-scalar", 0);
        assert_eq!(a, case_seed(42, "kernels", "bfs-bitset-vs-scalar", 0));
        assert_ne!(a, case_seed(42, "kernels", "bfs-bitset-vs-scalar", 1));
        assert_ne!(a, case_seed(42, "kernels", "suite-kernel-identity", 0));
        assert_ne!(a, case_seed(43, "kernels", "bfs-bitset-vs-scalar", 0));
    }

    #[test]
    fn unknown_suite_is_an_option_error() {
        let err = run_checks(&CheckOptions {
            suite: Some("nope".into()),
            cases: 1,
            ..Default::default()
        })
        .unwrap_err();
        assert!(err.contains("unknown suite"), "{err}");
    }
}
