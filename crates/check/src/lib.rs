//! Machine-checked invariants and differential oracles for the whole
//! engine — the safety net that lets scale and speed refactors rip
//! through the metric pipeline without silent behavior drift.
//!
//! The paper's degree-based-vs-structural argument rests on exact
//! metric definitions: a quiet change in expansion, resilience, or the
//! §5 link-value DAG flips L/H signatures and reclassifies generators.
//! This crate centralizes those correctness claims as a *named
//! registry* of [`Invariant`]s, each pairing a seeded case generator
//! with a property and an independent oracle:
//!
//! | suite       | claim                                                | oracle |
//! |-------------|------------------------------------------------------|--------|
//! | `threads`   | engine outputs bit-identical at 1/2/8 threads        | the 1-thread run |
//! | `kernels`   | bitset BFS kernels ≡ scalar path, BFS to full suite  | scalar per-center kernels |
//! | `codec`     | `.tgr` round-trip exact; every corruption rejected   | original bytes / checksum |
//! | `degseq`    | Erdős–Gallai test ≡ constructive realizability       | independent Havel–Hakimi |
//! | `store`     | ledger ↔ entries consistent; gc keeps LRU frontier   | re-derived frontier from pre-gc state |
//! | `trace`     | span streams form per-thread LIFO trees              | independent stream verifier |
//! | `hierarchy` | arena link-value engine ≡ kept textbook baseline     | `baseline::link_values_ref` |
//!
//! Every failure is replayable: the runner prints (and records in
//! `check-report.json`) a one-line `TOPOGEN_CHECK=suite:invariant:seed`
//! string that re-runs exactly the violated case. The `repro check`
//! subcommand is the CLI surface; CI runs all suites per push and
//! additionally asserts that an injected fault
//! (`TOPOGEN_FAULTS=ledger-append:err:1:S`) is *caught* — the checker
//! checks itself.

pub mod gen;
pub mod invariant;
pub mod run;
pub mod suites;

pub use invariant::{Check, Invariant, Suite};
pub use run::{run_checks, CheckOptions, CheckReport, ReplaySpec};

/// The full registry: every suite this build knows how to check.
/// Order is stable (it is the report and `--list` order).
pub fn registry() -> Vec<Suite> {
    vec![
        suites::threads::suite(),
        suites::kernels::suite(),
        suites::codec::suite(),
        suites::degseq::suite(),
        suites::store::suite(),
        suites::trace::suite(),
        suites::hierarchy::suite(),
        suites::scale::suite(),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn registry_names_are_unique_and_documented() {
        let suites = super::registry();
        assert!(suites.len() >= 7, "the contract is at least seven suites");
        let mut suite_names = std::collections::HashSet::new();
        for s in &suites {
            assert!(suite_names.insert(s.name), "duplicate suite {}", s.name);
            assert!(!s.description.is_empty());
            assert!(!s.invariants.is_empty(), "suite {} is empty", s.name);
            let mut inv_names = std::collections::HashSet::new();
            for inv in &s.invariants {
                assert!(
                    inv_names.insert(inv.name()),
                    "duplicate invariant {} in {}",
                    inv.name(),
                    s.name
                );
                assert!(!inv.property().is_empty());
                assert!(!inv.oracle().is_empty());
                assert!(!inv.shrink_hint().is_empty());
                assert!(inv.max_cases() >= 1);
            }
        }
    }
}
