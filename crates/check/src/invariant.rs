//! The invariant registry's vocabulary: a named, seeded, replayable
//! correctness claim with an explicit oracle and a shrink hint.

/// One machine-checked correctness claim.
///
/// An invariant is a *seeded case generator* plus a *property*: given a
/// case seed it derives a test case deterministically, runs the engine
/// code under check, and compares against an independent oracle. The
/// same seed always replays the same case — the runner's
/// `TOPOGEN_CHECK=suite:invariant:seed` line is a complete repro.
pub trait Invariant: Send + Sync {
    /// Stable kebab-case name, unique within its suite.
    fn name(&self) -> &'static str;

    /// The claim, in one plain-language sentence.
    fn property(&self) -> &'static str;

    /// The independent reference the property is checked against.
    fn oracle(&self) -> &'static str;

    /// How to minimize a failing case by hand (the vendored proptest
    /// shim does not shrink, so the hint is the shrinking strategy).
    fn shrink_hint(&self) -> &'static str;

    /// Cap on derived cases worth running — whole-suite differential
    /// runs are expensive and fully deterministic per seed, so they
    /// cap low; cheap per-graph properties leave this unbounded.
    fn max_cases(&self) -> u32 {
        u32::MAX
    }

    /// Run the case derived from `seed`. `Err` carries the violation
    /// detail (what diverged, where) for the report.
    fn check(&self, seed: u64) -> Result<(), String>;
}

/// A plain-function [`Invariant`] — the registry's workhorse.
pub struct Check {
    /// See [`Invariant::name`].
    pub name: &'static str,
    /// See [`Invariant::property`].
    pub property: &'static str,
    /// See [`Invariant::oracle`].
    pub oracle: &'static str,
    /// See [`Invariant::shrink_hint`].
    pub shrink_hint: &'static str,
    /// See [`Invariant::max_cases`].
    pub max_cases: u32,
    /// The seeded case: generate, run, compare.
    pub run: fn(u64) -> Result<(), String>,
}

impl Invariant for Check {
    fn name(&self) -> &'static str {
        self.name
    }
    fn property(&self) -> &'static str {
        self.property
    }
    fn oracle(&self) -> &'static str {
        self.oracle
    }
    fn shrink_hint(&self) -> &'static str {
        self.shrink_hint
    }
    fn max_cases(&self) -> u32 {
        self.max_cases
    }
    fn check(&self, seed: u64) -> Result<(), String> {
        (self.run)(seed)
    }
}

/// A named group of invariants sharing one subsystem under check.
pub struct Suite {
    /// Stable kebab-case suite name (`--suite` selector).
    pub name: &'static str,
    /// One-line description of what the suite guards.
    pub description: &'static str,
    /// The registered invariants, in report order.
    pub invariants: Vec<Box<dyn Invariant>>,
}
