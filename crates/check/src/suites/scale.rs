//! The million-node machinery's two scale contracts: a memory-budgeted
//! streaming build is bit-identical to the in-memory builder, and a
//! store-checkpointed batched suite — including a resume forced to
//! rebuild from persisted batch partials — reproduces the one-shot
//! curves fingerprint-for-fingerprint.

use crate::gen;
use crate::invariant::{Check, Suite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_core::ctx::RunCtx;
use topogen_core::suite::{plain_curves_key, run_suite_in, SuiteParams, SuiteResult};
use topogen_core::zoo::{build, Scale, TopologySpec};
use topogen_generators::canonical;
use topogen_graph::stream::StreamingBuilder;
use topogen_graph::Graph;

/// The `scale` suite.
pub fn suite() -> Suite {
    Suite {
        name: "scale",
        description: "budgeted streaming CSR builds and checkpointed suite resumes are \
                      bit-identical to the unbounded in-memory paths",
        invariants: vec![
            Box::new(Check {
                name: "streamed-csr-identity",
                property: "a generator emitted through a budget so tight it spills \
                           sorted runs to disk and k-way merges them produces exactly \
                           the in-memory graph (same nodes, same normalized edge list)",
                oracle: "the unbounded in-memory builder over the same RNG stream",
                shrink_hint: "shrink the node count, then raise the budget until the \
                              spill count drops to zero",
                max_cases: 32,
                run: streamed_csr_identity,
            }),
            Box::new(Check {
                name: "checkpoint-resume-identity",
                property: "a batched suite run persisting per-batch partials to a store, \
                           and a resumed run whose final curves entry was evicted (the \
                           mid-suite-kill shape), both reproduce the one-shot curves \
                           bit-for-bit — and the resume is served from partial hits",
                oracle: "the un-batched, store-less run_suite_in over the same topology",
                shrink_hint: "shrink the mesh side, then fix the batch size at 1",
                max_cases: 6,
                run: checkpoint_resume_identity,
            }),
        ],
    }
}

/// Normalized edge list plus node count — everything a CSR build is.
fn graph_fingerprint(g: &Graph) -> (usize, Vec<(u32, u32)>) {
    (
        g.node_count(),
        g.edges().iter().map(|e| (e.a, e.b)).collect(),
    )
}

fn streamed_csr_identity(seed: u64) -> Result<(), String> {
    let mut pick = gen::Lcg::new(seed);
    // Dense enough that a 64 KiB budget (4096-edge fill buffer) must
    // spill at least once; the generic `*_into` bodies guarantee both
    // paths consume the identical RNG stream.
    let n = 400 + pick.below(150);
    let p = 0.08;
    let budget = 64 * 1024;

    let mut mem_rng = StdRng::seed_from_u64(seed);
    let in_memory = canonical::random_gnp(n, p, &mut mem_rng);

    let dir = std::env::temp_dir().join(format!(
        "topogen-check-scale-{}-{seed:016x}",
        std::process::id()
    ));
    let _ = std::fs::create_dir_all(&dir);
    let mut sink = StreamingBuilder::new(0, Some(budget), &dir);
    let mut stream_rng = StdRng::seed_from_u64(seed);
    canonical::random_gnp_into(n, p, &mut stream_rng, &mut sink);
    let (streamed, stats) = sink.build();
    let _ = std::fs::remove_dir_all(&dir);

    if stats.spill_runs == 0 {
        return Err(format!(
            "budget {budget} never spilled over {} edges — the case exercised \
             nothing beyond the in-memory path",
            in_memory.edge_count()
        ));
    }
    if graph_fingerprint(&streamed) != graph_fingerprint(&in_memory) {
        return Err(format!(
            "streamed build diverged: {} nodes / {} edges vs in-memory \
             {} nodes / {} edges (spill_runs={})",
            streamed.node_count(),
            streamed.edge_count(),
            in_memory.node_count(),
            in_memory.edge_count(),
            stats.spill_runs
        ));
    }
    Ok(())
}

/// Bit-level fingerprint of everything an archived curves JSON carries.
fn suite_fingerprint(r: &SuiteResult) -> (Vec<u64>, Vec<(u32, u64, u64)>, String) {
    (
        r.expansion.iter().map(|v| v.to_bits()).collect(),
        r.resilience
            .iter()
            .chain(r.distortion.iter())
            .map(|pt| (pt.radius, pt.avg_size.to_bits(), pt.value.to_bits()))
            .collect(),
        r.signature.to_string(),
    )
}

fn checkpoint_resume_identity(seed: u64) -> Result<(), String> {
    let mut pick = gen::Lcg::new(seed);
    let side = 8 + pick.below(4);
    let t = build(&TopologySpec::Mesh { side }, Scale::Small, seed);
    let mut params = SuiteParams::quick();
    params.seed = seed;

    let one_shot = suite_fingerprint(&run_suite_in(&RunCtx::new(), &t, &params));

    let dir = std::env::temp_dir().join(format!(
        "topogen-check-ckpt-{}-{seed:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = std::sync::Arc::new(
        topogen_store::Store::open(&dir).map_err(|e| format!("store open: {e}"))?,
    );
    let ctx = RunCtx::new().with_store(store.clone());
    params.batch = Some(1 + pick.below(3));

    let cold = run_suite_in(&ctx, &t, &params);
    if suite_fingerprint(&cold) != one_shot {
        let _ = std::fs::remove_dir_all(&dir);
        return Err(format!(
            "cold batched run (batch={:?}) diverged from the one-shot curves",
            params.batch
        ));
    }

    // The mid-suite-kill shape: batch partials persisted, final curves
    // entry absent. The resumed run must rebuild purely from partials.
    store.remove(&plain_curves_key(&t, &params));
    let resumed = run_suite_in(&ctx, &t, &params);
    let partial_hits = resumed.timings.store_hits;
    let fp = suite_fingerprint(&resumed);
    let _ = std::fs::remove_dir_all(&dir);
    if fp != one_shot {
        return Err(format!(
            "resumed run (batch={:?}) diverged from the one-shot curves",
            params.batch
        ));
    }
    if partial_hits == 0 {
        return Err("resumed run recomputed every batch: no partial checkpoint hits".to_string());
    }
    Ok(())
}
