//! Hierarchy link values: the arena-based production engine against
//! the kept-verbatim textbook baseline (`topogen_hierarchy::baseline`),
//! bit-for-bit — the §5 backbone/hierarchy argument rests on these
//! numbers.

use crate::gen;
use crate::invariant::{Check, Suite};
use topogen_hierarchy::baseline::link_values_ref;
use topogen_hierarchy::{link_values, link_values_threads, PathMode};

/// The `hierarchy` suite.
pub fn suite() -> Suite {
    Suite {
        name: "hierarchy",
        description: "the link-value engine matches the kept verbatim baseline oracle",
        invariants: vec![
            Box::new(Check {
                name: "linkvalues-match-baseline",
                property: "the arena link-value engine returns bit-identical values to \
                           the textbook per-pair baseline on arbitrary connected graphs",
                oracle: "baseline::link_values_ref (the kept pre-optimization code)",
                shrink_hint: "shrink the node count, then the extra-edge count",
                max_cases: u32::MAX,
                run: linkvalues_match_baseline,
            }),
            Box::new(Check {
                name: "threaded-linkvalues-match-baseline",
                property: "the threaded engine (2 and 8 workers) still matches the \
                           serial baseline bit-for-bit",
                oracle: "baseline::link_values_ref",
                shrink_hint: "shrink the node count, then pin threads to 2",
                max_cases: u32::MAX,
                run: threaded_linkvalues_match_baseline,
            }),
        ],
    }
}

fn compare(n: usize, got: &[f64], want: &[f64], what: &str) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "n={n}: {what} returned {} values, baseline {}",
            got.len(),
            want.len()
        ));
    }
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        if a.to_bits() != b.to_bits() {
            return Err(format!(
                "n={n}: {what} diverges from baseline at link {i}: {a} vs {b}"
            ));
        }
    }
    Ok(())
}

fn linkvalues_match_baseline(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 4 + rng.below(26);
    let g = gen::connected_graph(n, rng.below(n + 1), rng.next() as u64);
    let mode = PathMode::Shortest;
    let got = link_values(&g, &mode);
    let want = link_values_ref(&g, &mode);
    compare(n, &got, &want, "link_values")
}

fn threaded_linkvalues_match_baseline(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 4 + rng.below(22);
    let g = gen::connected_graph(n, rng.below(n + 1), rng.next() as u64);
    let mode = PathMode::Shortest;
    let want = link_values_ref(&g, &mode);
    for threads in [2usize, 8] {
        let got = link_values_threads(&g, &mode, Some(threads), None);
        compare(n, &got, &want, "link_values_threads")?;
    }
    Ok(())
}
