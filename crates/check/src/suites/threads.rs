//! Thread-count bit-identity: the engines must produce the same bits
//! at 1, 2, and 8 worker threads — the determinism contract behind
//! every archived JSON and every cached curve.

use crate::gen;
use crate::invariant::{Check, Suite};
use topogen_graph::NodeId;
use topogen_metrics::balls::PlainBalls;
use topogen_metrics::engine::{BallPlan, DistortionMetric, ResilienceMetric};
use topogen_metrics::CurvePoint;

/// The `threads` suite.
pub fn suite() -> Suite {
    Suite {
        name: "threads",
        description: "engine outputs are bit-identical at 1, 2, and 8 worker threads",
        invariants: vec![
            Box::new(Check {
                name: "ballplan-thread-identity",
                property: "a BallPlan's expansion and metric curves are bit-identical \
                           at 1, 2, and 8 threads",
                oracle: "the 1-thread run of the same plan",
                shrink_hint: "shrink the node count, then drop extra edges, then metrics",
                max_cases: u32::MAX,
                run: ballplan_thread_identity,
            }),
            Box::new(Check {
                name: "hier-thread-identity",
                property: "link_values_threads returns bit-identical values at 1, 2, \
                           and 8 threads",
                oracle: "the 1-thread run on the same graph",
                shrink_hint: "shrink the node count, then the extra-edge count",
                max_cases: u32::MAX,
                run: hier_thread_identity,
            }),
        ],
    }
}

fn same_bits(a: &[CurvePoint], b: &[CurvePoint]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.radius == y.radius
                && x.avg_size.to_bits() == y.avg_size.to_bits()
                && x.value.to_bits() == y.value.to_bits()
        })
}

fn ballplan_thread_identity(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 8 + rng.below(40);
    let g = gen::connected_graph(n, n / 2 + rng.below(n), rng.next() as u64);
    let src = PlainBalls { graph: &g };
    let ball_centers: Vec<NodeId> = g.nodes().step_by(2).collect();
    let exp_centers: Vec<NodeId> = g.nodes().collect();
    let res = ResilienceMetric {
        restarts: 2,
        max_ball_nodes: 1_000,
    };
    let dis = DistortionMetric {
        max_ball_nodes: 1_000,
        use_bartal: false,
        polish: false,
    };
    let run = |threads: usize| {
        BallPlan::new(&src, 6, seed)
            .ball_centers(ball_centers.clone())
            .expansion_centers(exp_centers.clone())
            .threads(Some(threads))
            .metric(&res)
            .metric(&dis)
            .run()
    };
    let one = run(1);
    for threads in [2usize, 8] {
        let many = run(threads);
        for (i, (ca, cb)) in one.curves.iter().zip(&many.curves).enumerate() {
            if !same_bits(ca, cb) {
                return Err(format!(
                    "n={n}: curve {i} differs between 1 and {threads} threads"
                ));
            }
        }
        if one.curves.len() != many.curves.len() {
            return Err(format!("n={n}: curve count differs at {threads} threads"));
        }
        if one
            .expansion
            .iter()
            .zip(&many.expansion)
            .any(|(a, b)| a.to_bits() != b.to_bits())
            || one.expansion.len() != many.expansion.len()
        {
            return Err(format!(
                "n={n}: expansion differs between 1 and {threads} threads"
            ));
        }
    }
    Ok(())
}

fn hier_thread_identity(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 6 + rng.below(26);
    let g = gen::connected_graph(n, rng.below(n + 1), rng.next() as u64);
    let mode = topogen_hierarchy::PathMode::Shortest;
    let one = topogen_hierarchy::link_values_threads(&g, &mode, Some(1), None);
    for threads in [2usize, 8] {
        let many = topogen_hierarchy::link_values_threads(&g, &mode, Some(threads), None);
        if one.len() != many.len() {
            return Err(format!("n={n}: value count differs at {threads} threads"));
        }
        for (i, (a, b)) in one.iter().zip(&many).enumerate() {
            if a.to_bits() != b.to_bits() {
                return Err(format!(
                    "n={n}: link {i} differs at {threads} threads: {a} vs {b}"
                ));
            }
        }
    }
    Ok(())
}
