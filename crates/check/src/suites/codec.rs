//! `.tgr` container codec: exact round-trips and loud rejection of
//! every single-byte corruption and every truncation.

use crate::gen;
use crate::invariant::{Check, Suite};
use topogen_store::codec::{
    decode_graph, encode_graph, f64_from_payload, f64_payload, verify_container,
};

/// The `codec` suite.
pub fn suite() -> Suite {
    Suite {
        name: "codec",
        description: ".tgr containers round-trip exactly and reject every corruption",
        invariants: vec![
            Box::new(Check {
                name: "graph-roundtrip",
                property: "encode_graph → decode_graph reproduces the graph exactly, \
                           and f64 payloads round-trip bit-for-bit (NaN, ±inf, -0.0, \
                           subnormals included)",
                oracle: "the original in-memory values",
                shrink_hint: "shrink the node count, then the edge count, then the payload",
                max_cases: u32::MAX,
                run: graph_roundtrip,
            }),
            Box::new(Check {
                name: "corruption-rejected",
                property: "every single-byte flip and every strict-prefix truncation of \
                           a valid container fails verification",
                oracle: "the trailing FNV-1a checksum and the length framing",
                shrink_hint: "bisect the flipped offset; shrink the source graph",
                max_cases: u32::MAX,
                run: corruption_rejected,
            }),
        ],
    }
}

fn graph_roundtrip(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 2 + rng.below(40);
    let g = gen::sparse_graph(n, rng.below(4 * n), rng.next() as u64);
    let bytes = encode_graph(&g);
    verify_container(&bytes).map_err(|e| format!("fresh container fails verify: {e}"))?;
    let back = decode_graph(&bytes).map_err(|e| format!("fresh container fails decode: {e}"))?;
    if back.node_count() != g.node_count() {
        return Err(format!(
            "node count drifted: {} -> {}",
            g.node_count(),
            back.node_count()
        ));
    }
    let before: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.a, e.b)).collect();
    let after: Vec<(u32, u32)> = back.edges().iter().map(|e| (e.a, e.b)).collect();
    if before != after {
        return Err(format!(
            "edge list drifted: {} -> {} edges",
            before.len(),
            after.len()
        ));
    }
    // Exact-bit float payloads, including the values JSON cannot carry.
    let mut values = vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        f64::MIN_POSITIVE / 2.0, // subnormal
        f64::MAX,
    ];
    for _ in 0..16 {
        values.push(f64::from_bits(
            (rng.next() as u64) << 33 | rng.next() as u64,
        ));
    }
    let payload = f64_payload(&values);
    let back = f64_from_payload(&payload).map_err(|e| format!("f64 payload decode: {e}"))?;
    if back.len() != values.len()
        || back
            .iter()
            .zip(&values)
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err("f64 payload round-trip changed bits".into());
    }
    Ok(())
}

fn corruption_rejected(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 2 + rng.below(24);
    let g = gen::sparse_graph(n, rng.below(3 * n), rng.next() as u64);
    let bytes = encode_graph(&g);
    verify_container(&bytes).map_err(|e| format!("fresh container fails verify: {e}"))?;
    for offset in 0..bytes.len() {
        let mask = 1u8 << rng.below(8);
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= mask;
        if verify_container(&corrupt).is_ok() && decode_graph(&corrupt).is_ok() {
            return Err(format!(
                "flip of bit {mask:#04x} at offset {offset}/{} went undetected",
                bytes.len()
            ));
        }
    }
    for len in 0..bytes.len() {
        if verify_container(&bytes[..len]).is_ok() {
            return Err(format!(
                "truncation to {len}/{} bytes went undetected",
                bytes.len()
            ));
        }
    }
    Ok(())
}
