//! Scalar-vs-bitset kernel equivalence: the batched bitset BFS path
//! must reproduce the scalar per-center path bit-for-bit, from raw
//! distance vectors all the way up to full archived suite curves.

use crate::gen;
use crate::invariant::{Check, Suite};
use topogen_core::ctx::RunCtx;
use topogen_core::suite::{run_suite_in, SuiteParams, SuiteResult};
use topogen_core::zoo::{build, Scale, TopologySpec};
use topogen_graph::bfs;
use topogen_graph::bfs_bitset::{self, BfsStats};
use topogen_graph::NodeId;
use topogen_metrics::balls::PlainBalls;
use topogen_metrics::engine::{BallPlan, DistortionMetric, KernelPolicy, ResilienceMetric};

/// The `kernels` suite.
pub fn suite() -> Suite {
    Suite {
        name: "kernels",
        description: "bitset BFS kernels are bit-identical to the scalar per-center path",
        invariants: vec![
            Box::new(Check {
                name: "bfs-bitset-vs-scalar",
                property: "bitset bounded BFS distances, ring sizes, and multi-source \
                           ring counts equal the scalar kernels on arbitrary graphs",
                oracle: "the scalar per-center BFS kernels",
                shrink_hint: "shrink the node count, then the edge count, then the radius",
                max_cases: u32::MAX,
                run: bfs_bitset_vs_scalar,
            }),
            Box::new(Check {
                name: "ballplan-kernel-identity",
                property: "a BallPlan forced to the bitset kernels reproduces the \
                           forced-scalar curves bit-for-bit on arbitrary connected graphs",
                oracle: "the same plan with KernelPolicy::Scalar",
                shrink_hint: "shrink the node count, then drop the distortion metric",
                max_cases: u32::MAX,
                run: ballplan_kernel_identity,
            }),
            Box::new(Check {
                name: "zoo-archive-kernel-identity",
                property: "the full metric suite under KernelPolicy::Bitset matches the \
                           scalar run on every Figure-1 topology (everything an archived \
                           JSON contains, bit-for-bit)",
                oracle: "the forced-scalar suite run (the archived curves' producer)",
                shrink_hint: "drop topologies from the zoo, then shrink SuiteParams::quick",
                max_cases: 1,
                run: zoo_archive_kernel_identity,
            }),
        ],
    }
}

fn bfs_bitset_vs_scalar(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 2 + rng.below(40);
    let g = gen::sparse_graph(n, rng.below(3 * n + 1), rng.next() as u64);
    let max_h = 1 + rng.below(8) as u32;
    let mut stats = BfsStats::default();
    for src in 0..n as NodeId {
        let scalar = bfs::distances_bounded(&g, src, max_h);
        let bitset = bfs_bitset::distances_bounded(&g, src, max_h, &mut stats);
        if scalar != bitset {
            return Err(format!(
                "n={n} h={max_h}: distances from {src} diverge: scalar {scalar:?} \
                 vs bitset {bitset:?}"
            ));
        }
    }
    // Multi-source lanes against per-source scalar ring sizes.
    let lanes: Vec<NodeId> = (0..n.min(64) as NodeId).collect();
    let rings = bfs_bitset::multi_source_ring_counts(&g, &lanes, max_h, &mut stats);
    for (lane, &src) in lanes.iter().enumerate() {
        let scalar = bfs::ring_sizes(&g, src, max_h);
        if rings[lane] != scalar {
            return Err(format!(
                "n={n} h={max_h}: ring counts for source {src} diverge: scalar \
                 {scalar:?} vs lane {:?}",
                rings[lane]
            ));
        }
    }
    Ok(())
}

fn ballplan_kernel_identity(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 8 + rng.below(60);
    let g = gen::connected_graph(n, rng.below(2 * n), rng.next() as u64);
    let src = PlainBalls { graph: &g };
    let centers: Vec<NodeId> = g.nodes().collect();
    let res = ResilienceMetric {
        restarts: 2,
        max_ball_nodes: 1_000,
    };
    let dis = DistortionMetric {
        max_ball_nodes: 1_000,
        use_bartal: false,
        polish: false,
    };
    let run = |policy: KernelPolicy| {
        BallPlan::new(&src, 8, seed)
            .ball_centers(centers.clone())
            .expansion_centers(centers.clone())
            .kernel(policy)
            .metric(&res)
            .metric(&dis)
            .run()
    };
    let scalar = run(KernelPolicy::Scalar);
    let bitset = run(KernelPolicy::Bitset);
    if scalar.expansion.len() != bitset.expansion.len()
        || scalar
            .expansion
            .iter()
            .zip(&bitset.expansion)
            .any(|(a, b)| a.to_bits() != b.to_bits())
    {
        return Err(format!("n={n}: expansion diverges between kernels"));
    }
    if scalar.curves.len() != bitset.curves.len() {
        return Err(format!("n={n}: curve count diverges between kernels"));
    }
    for (i, (ca, cb)) in scalar.curves.iter().zip(&bitset.curves).enumerate() {
        let same = ca.len() == cb.len()
            && ca.iter().zip(cb).all(|(x, y)| {
                x.radius == y.radius
                    && x.avg_size.to_bits() == y.avg_size.to_bits()
                    && x.value.to_bits() == y.value.to_bits()
            });
        if !same {
            return Err(format!("n={n}: metric curve {i} diverges between kernels"));
        }
    }
    Ok(())
}

/// One metric curve as exact bit patterns: (radius, avg_size, value).
type CurveBits = Vec<(u32, u64, u64)>;

/// Bitwise fingerprint of everything an archived suite JSON contains.
fn fingerprint(r: &SuiteResult) -> (Vec<u64>, CurveBits, CurveBits, String) {
    (
        r.expansion.iter().map(|v| v.to_bits()).collect(),
        r.resilience
            .iter()
            .map(|p| (p.radius, p.avg_size.to_bits(), p.value.to_bits()))
            .collect(),
        r.distortion
            .iter()
            .map(|p| (p.radius, p.avg_size.to_bits(), p.value.to_bits()))
            .collect(),
        r.signature.to_string(),
    )
}

fn zoo_archive_kernel_identity(_seed: u64) -> Result<(), String> {
    // The archives are produced at seed 42: this is exactly the claim
    // the CI byte-diff of forced-scalar vs forced-bitset archives used
    // to make, as one registered invariant. The build seed is pinned to
    // the archival seed; arbitrary-seed coverage lives in
    // `ballplan-kernel-identity`.
    let build_seed = 42;
    let params = SuiteParams::quick();
    let mut zoo = TopologySpec::figure1_zoo(Scale::Small);
    // The full-zoo sweep is the release-mode (CI) claim; debug builds
    // are an order of magnitude slower on the metric suite, so they
    // spot-check a canonical/degree-based/measured subset to keep
    // `cargo test` responsive.
    if cfg!(debug_assertions) {
        let keep = [0usize, 2, 6, 7]; // Tree, Random, PLRG, AS
        let mut i = 0;
        zoo.retain(|_| {
            let k = keep.contains(&i);
            i += 1;
            k
        });
    }
    for spec in zoo {
        let t = build(&spec, Scale::Small, build_seed);
        let run =
            |policy: KernelPolicy| run_suite_in(&RunCtx::new().with_kernel(policy), &t, &params);
        let scalar = run(KernelPolicy::Scalar);
        let bitset = run(KernelPolicy::Bitset);
        if fingerprint(&scalar) != fingerprint(&bitset) {
            return Err(format!(
                "{} (build seed {build_seed}): bitset suite diverged from the \
                 scalar path",
                t.name
            ));
        }
        if scalar.timings.words_scanned != 0 {
            return Err(format!(
                "{}: scalar path touched the bitset counters",
                t.name
            ));
        }
        if bitset.timings.words_scanned == 0 {
            return Err(format!(
                "{}: forced bitset run recorded no kernel work",
                t.name
            ));
        }
    }
    Ok(())
}
