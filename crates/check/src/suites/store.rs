//! Store/ledger consistency: every ledger line resolves to an entry on
//! disk, every entry on disk is ledgered, and gc evicts exactly the
//! least-recently-used frontier — checked against an independent
//! re-derivation of the frontier from the pre-gc state.
//!
//! The workload phase is fault-tolerant by design: with `store-write`
//! faults armed the store fails *open* (a dropped put costs a miss,
//! never an inconsistency), so this suite stays green under
//! `TOPOGEN_FAULTS=store-write:…`. A `ledger-append` fault, by
//! contrast, drops the line that records a published entry — a genuine
//! violation of "every file is ledgered" that this suite must catch
//! (CI's injected-violation trip test arms exactly that).

use crate::gen::{self, Lcg};
use crate::invariant::{Check, Suite};
use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use topogen_store::codec::encode_graph;
use topogen_store::Store;

/// The `store` suite.
pub fn suite() -> Suite {
    Suite {
        name: "store",
        description: "ledger and entry files stay consistent; gc keeps the LRU frontier",
        invariants: vec![
            Box::new(Check {
                name: "ledger-bijection",
                property: "after a put/get workload, every ledger line's hash resolves \
                           to an entry file and every entry file has a ledger line \
                           naming its key",
                oracle: "an independent parse of ledger.tsv joined against a disk walk",
                shrink_hint: "shrink the workload length, then the entry sizes",
                max_cases: u32::MAX,
                run: ledger_bijection,
            }),
            Box::new(Check {
                name: "gc-lru-frontier",
                property: "gc evicts exactly the least-recently-used entries needed to \
                           reach the budget, keeping the recency frontier",
                oracle: "the frontier re-derived from the pre-gc ledger and sizes",
                shrink_hint: "shrink the workload, then widen the byte budget",
                max_cases: u32::MAX,
                run: gc_lru_frontier,
            }),
            Box::new(Check {
                name: "concurrent-put-gc",
                property: "puts racing a generous gc lose nothing: the store verifies \
                           clean, stays consistent, and (fault-free) serves every put \
                           back byte-identical",
                oracle: "the put payloads retained in memory",
                shrink_hint: "reduce writer threads to 1, then shrink puts per writer",
                max_cases: 16,
                run: concurrent_put_gc,
            }),
        ],
    }
}

fn case_dir(tag: &str, seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "topogen-check-{tag}-{}-{seed:016x}",
        std::process::id()
    ))
}

/// A small valid `.tgr` container whose size varies with `seed`.
fn container(seed: u64) -> Vec<u8> {
    let mut rng = Lcg::new(seed);
    let n = 2 + rng.below(24);
    encode_graph(&gen::sparse_graph(n, rng.below(3 * n), rng.next() as u64))
}

/// Independent ledger parse: last rank and key per 16-hex hash, in the
/// store's own line format (`verb\thash\tlen\tkey`). Deliberately
/// re-implemented here rather than calling into `topogen-store`.
fn parse_ledger(root: &std::path::Path) -> HashMap<String, (usize, String)> {
    let mut map = HashMap::new();
    let Ok(text) = std::fs::read_to_string(root.join("ledger.tsv")) else {
        return map;
    };
    for (rank, line) in text.lines().enumerate() {
        let mut parts = line.splitn(4, '\t');
        let _verb = parts.next();
        let (Some(hash), Some(_len), Some(key)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) {
            map.insert(hash.to_string(), (rank, key.to_string()));
        }
    }
    map
}

/// Entry files on disk, as hash → size, via the store's own listing
/// (which walks the shard directories).
fn disk_entries(store: &Store) -> HashMap<String, u64> {
    store.ls().into_iter().map(|e| (e.hash, e.bytes)).collect()
}

/// The bijection check shared by the invariants: ledgered ⊇ on-disk
/// and on-disk ⊇ ledgered.
fn check_bijection(store: &Store) -> Result<(), String> {
    let ledger = parse_ledger(store.root());
    let disk = disk_entries(store);
    for hash in ledger.keys() {
        if !disk.contains_key(hash) {
            return Err(format!(
                "ledger line for {hash} resolves to no entry file ({} on disk)",
                disk.len()
            ));
        }
    }
    for hash in disk.keys() {
        if !ledger.contains_key(hash) {
            return Err(format!(
                "entry file {hash} has no ledger line ({} ledgered)",
                ledger.len()
            ));
        }
    }
    Ok(())
}

fn ledger_bijection(seed: u64) -> Result<(), String> {
    let dir = case_dir("bijection", seed);
    let _ = std::fs::remove_dir_all(&dir);
    let result = (|| {
        let store = Store::open(&dir).map_err(|e| format!("open: {e}"))?;
        let mut rng = Lcg::new(seed);
        let keys: Vec<String> = (0..12 + rng.below(12))
            .map(|i| format!("check/bijection/{seed:x}/{i}"))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            store.put(key, &container(seed.wrapping_add(i as u64)));
        }
        // Recency churn: touch a seeded subset.
        for _ in 0..keys.len() {
            let _ = store.get(&keys[rng.below(keys.len())]);
        }
        check_bijection(&store)?;
        // Every ledgered key must round-trip through ls().
        for info in store.ls() {
            if info.key.is_none() {
                return Err(format!("ls() lost the key of entry {}", info.hash));
            }
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn gc_lru_frontier(seed: u64) -> Result<(), String> {
    let dir = case_dir("gc", seed);
    let _ = std::fs::remove_dir_all(&dir);
    let result = (|| {
        let store = Store::open(&dir).map_err(|e| format!("open: {e}"))?;
        let mut rng = Lcg::new(seed);
        let keys: Vec<String> = (0..16 + rng.below(16))
            .map(|i| format!("check/gc/{seed:x}/{i}"))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            store.put(key, &container(seed.wrapping_add(i as u64)));
        }
        for _ in 0..2 * keys.len() {
            let _ = store.get(&keys[rng.below(keys.len())]);
        }
        // Pre-gc state: sizes from disk, recency from our own ledger
        // parse. Unledgered entries (possible under ledger faults)
        // count as the oldest tier, in hash order — the store's
        // documented rule, re-derived independently.
        let ledger = parse_ledger(store.root());
        let disk = disk_entries(&store);
        let mut order: Vec<(&String, u64)> = disk.iter().map(|(h, &b)| (h, b)).collect();
        order.sort_by_key(|(hash, _)| {
            ledger
                .get(*hash)
                .map(|(rank, _)| (1u8, *rank, (*hash).clone()))
                .unwrap_or((0, 0, (*hash).clone()))
        });
        let total: u64 = disk.values().sum();
        let budget = total / 2 + (rng.below(total.max(2) as usize / 2) as u64);
        let mut excess = total.saturating_sub(budget);
        let mut want_evicted = HashSet::new();
        for (hash, bytes) in &order {
            if excess > 0 {
                want_evicted.insert((*hash).clone());
                excess = excess.saturating_sub(*bytes);
            }
        }
        let report = store.gc(budget);
        let got_evicted: HashSet<String> = report.evicted.iter().cloned().collect();
        if got_evicted != want_evicted {
            return Err(format!(
                "gc to {budget}/{total} bytes evicted {:?}, frontier oracle wanted {:?}",
                sorted(&got_evicted),
                sorted(&want_evicted)
            ));
        }
        // Survivors on disk are exactly the complement, and the
        // compacted ledger matches them.
        let after = disk_entries(&store);
        let want_kept: HashSet<&String> =
            disk.keys().filter(|h| !want_evicted.contains(*h)).collect();
        if after.len() != want_kept.len() || !want_kept.iter().all(|h| after.contains_key(*h)) {
            return Err(format!(
                "post-gc disk has {} entries, frontier oracle wanted {}",
                after.len(),
                want_kept.len()
            ));
        }
        check_bijection(&store)?;
        if store.total_bytes() > total && budget < total {
            return Err("gc grew the store".into());
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn sorted(set: &HashSet<String>) -> Vec<&String> {
    let mut v: Vec<&String> = set.iter().collect();
    v.sort();
    v
}

fn concurrent_put_gc(seed: u64) -> Result<(), String> {
    let dir = case_dir("concurrent", seed);
    let _ = std::fs::remove_dir_all(&dir);
    let result = (|| {
        let store = Arc::new(Store::open(&dir).map_err(|e| format!("open: {e}"))?);
        const WRITERS: usize = 4;
        const PUTS: usize = 8;
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                let mut written = Vec::new();
                for i in 0..PUTS {
                    let key = format!("check/concurrent/{seed:x}/{w}/{i}");
                    let bytes = container(seed ^ ((w * PUTS + i) as u64) << 8);
                    store.put(&key, &bytes);
                    written.push((key, bytes));
                }
                written
            }));
        }
        // Interleave generous gc passes: budget far above the total, so
        // the frontier is everything — racing puts must lose nothing.
        for _ in 0..6 {
            let _ = store.gc(u64::MAX / 2);
            std::thread::yield_now();
        }
        let mut written = Vec::new();
        for h in handles {
            written.extend(h.join().map_err(|_| "writer thread panicked")?);
        }
        let _ = store.gc(u64::MAX / 2);
        let verify = store.verify();
        if !verify.corrupt.is_empty() {
            return Err(format!(
                "{} corrupt entries after races",
                verify.corrupt.len()
            ));
        }
        check_bijection(&store)?;
        // Durability is only claimed fault-free: with store-write
        // faults armed, a put may fail open (a miss, not a violation).
        if !topogen_par::faults::active() {
            for (key, bytes) in &written {
                match store.get(key) {
                    Some(got) if &got == bytes => {}
                    Some(_) => return Err(format!("{key}: bytes changed")),
                    None => return Err(format!("{key}: put lost without faults armed")),
                }
            }
        }
        Ok(())
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}
