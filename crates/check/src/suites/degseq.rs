//! Degree-sequence graphicality: the engine's Erdős–Gallai test is
//! checked against an independent *constructive* oracle (Havel–Hakimi,
//! which realizes a graph or proves none exists), and the typed
//! `GenError::NotGraphical` witness is verified to be genuine.

use crate::gen::Lcg;
use crate::invariant::{Check, Suite};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_generators::degseq::{
    erdos_gallai_witness, is_graphical, power_law_degrees_graphical, EgWitness,
};
use topogen_generators::errors::GenError;

/// The `degseq` suite.
pub fn suite() -> Suite {
    Suite {
        name: "degseq",
        description: "Erdős–Gallai graphicality agrees with constructive realizability",
        invariants: vec![
            Box::new(Check {
                name: "eg-matches-havel-hakimi",
                property: "is_graphical agrees with an independent Havel–Hakimi \
                           construction on arbitrary degree sequences",
                oracle: "Havel–Hakimi (implemented in topogen-check, shares no code)",
                shrink_hint: "shrink the sequence length, then reduce degrees toward 0",
                max_cases: u32::MAX,
                run: eg_matches_havel_hakimi,
            }),
            Box::new(Check {
                name: "witness-recomputes",
                property: "every Erdős–Gallai witness names a genuinely violated \
                           condition, recomputable from the sorted sequence",
                oracle: "direct recomputation of the named inequality",
                shrink_hint: "shrink the sequence length, then reduce degrees toward 0",
                max_cases: u32::MAX,
                run: witness_recomputes,
            }),
            Box::new(Check {
                name: "powerlaw-draws-realizable",
                property: "power_law_degrees_graphical returns only realizable \
                           sequences, and surfaces exhaustion as NotGraphical with a \
                           genuine prefix-sum witness",
                oracle: "Havel–Hakimi realizability of the accepted draw",
                shrink_hint: "shrink n toward 2 and the attempt budget toward 1",
                max_cases: u32::MAX,
                run: powerlaw_draws_realizable,
            }),
        ],
    }
}

/// Havel–Hakimi: repeatedly satisfy the largest degree from the next
/// largest ones; the sequence is graphical iff the process empties.
/// Quadratic and naive on purpose — it shares no structure with the
/// Erdős–Gallai inequalities it cross-checks.
fn havel_hakimi_realizable(degrees: &[usize]) -> bool {
    let mut d: Vec<usize> = degrees.to_vec();
    loop {
        d.sort_unstable_by(|a, b| b.cmp(a));
        while d.last() == Some(&0) {
            d.pop();
        }
        let Some(&head) = d.first() else {
            return true;
        };
        if head > d.len() - 1 {
            return false;
        }
        d.remove(0);
        for slot in d.iter_mut().take(head) {
            if *slot == 0 {
                return false;
            }
            *slot -= 1;
        }
    }
}

/// A seeded batch of adversarial degree sequences: near-regular,
/// heavy-headed, sparse, and unconstrained draws — shapes that sit on
/// both sides of the graphicality boundary.
fn sequences(seed: u64, batch: usize) -> Vec<Vec<usize>> {
    let mut rng = Lcg::new(seed);
    let mut out = Vec::with_capacity(batch);
    for _ in 0..batch {
        let n = 1 + rng.below(24);
        let d: Vec<usize> = match rng.below(4) {
            // Unconstrained: degrees up to ~1.5n, frequently infeasible.
            0 => (0..n).map(|_| rng.below(3 * n / 2 + 1)).collect(),
            // Legal-range draws: the interesting boundary cases.
            1 => (0..n).map(|_| rng.below(n)).collect(),
            // Near-regular with a heavy head.
            2 => {
                let base = rng.below(n);
                let mut d: Vec<usize> = (0..n).map(|_| base.min(n - 1)).collect();
                d[0] = rng.below(2 * n + 1);
                d
            }
            // Mostly-ones with a few spikes (power-law caricature).
            _ => (0..n)
                .map(|i| if i % 7 == 0 { rng.below(n + 3) } else { 1 })
                .collect(),
        };
        out.push(d);
    }
    out
}

fn eg_matches_havel_hakimi(seed: u64) -> Result<(), String> {
    for d in sequences(seed, 200) {
        let eg = is_graphical(&d);
        let hh = havel_hakimi_realizable(&d);
        if eg != hh {
            return Err(format!(
                "oracles disagree on {d:?}: Erdős–Gallai says {eg}, Havel–Hakimi says {hh}"
            ));
        }
    }
    Ok(())
}

fn witness_recomputes(seed: u64) -> Result<(), String> {
    for d in sequences(seed ^ 0x9e3779b97f4a7c15, 200) {
        match erdos_gallai_witness(&d) {
            None => {
                if !havel_hakimi_realizable(&d) {
                    return Err(format!("no witness for unrealizable {d:?}"));
                }
            }
            Some(EgWitness::OddSum { sum }) => {
                let actual: usize = d.iter().sum();
                if sum != actual || sum % 2 == 0 {
                    return Err(format!("bogus odd-sum witness {sum} for {d:?}"));
                }
            }
            Some(EgWitness::Prefix {
                k,
                prefix_sum,
                bound,
            }) => {
                let mut s = d.clone();
                s.sort_unstable_by(|a, b| b.cmp(a));
                if k == 0 || k > s.len() {
                    return Err(format!("witness k={k} out of range for {d:?}"));
                }
                let lhs: usize = s[..k].iter().sum();
                let rhs: usize = k * (k - 1) + s[k..].iter().map(|&x| x.min(k)).sum::<usize>();
                if (prefix_sum, bound) != (lhs, rhs) || prefix_sum <= bound {
                    return Err(format!(
                        "witness ({prefix_sum} > {bound}) at k={k} does not recompute \
                         for {d:?}: actual {lhs} vs {rhs}"
                    ));
                }
            }
        }
    }
    Ok(())
}

fn powerlaw_draws_realizable(seed: u64) -> Result<(), String> {
    let mut lcg = Lcg::new(seed);
    // Healthy scale: draws must succeed and be realizable.
    let n = 50 + lcg.below(200);
    let alpha = 2.0 + lcg.below(100) as f64 / 100.0;
    let cap = 2 + lcg.below(n / 2);
    let mut rng = StdRng::seed_from_u64(seed);
    match power_law_degrees_graphical(n, alpha, cap, 64, &mut rng) {
        Ok(d) => {
            if !havel_hakimi_realizable(&d) {
                return Err(format!(
                    "accepted draw (n={n}, alpha={alpha}, cap={cap}) is not realizable"
                ));
            }
        }
        // A bounded loop may exhaust; the contract is then a genuine
        // typed witness, never a silent or untyped failure.
        Err(GenError::NotGraphical {
            k,
            prefix_sum,
            bound,
            ..
        }) => {
            if k == 0 || prefix_sum <= bound {
                return Err(format!(
                    "healthy-scale NotGraphical witness is not a violation: k={k}, \
                     {prefix_sum} <= {bound}"
                ));
            }
        }
        Err(e) => {
            return Err(format!(
                "healthy-scale draw (n={n}, alpha={alpha}, cap={cap}) failed with \
                 wrong variant: {e}"
            ))
        }
    }
    // Adversarial scale: n=2 with a tall cap and one attempt — every
    // failure must be the typed witness-carrying error.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    match power_law_degrees_graphical(2, 1.1, 5, 1, &mut rng) {
        Ok(d) => {
            if !havel_hakimi_realizable(&d) {
                return Err(format!("accepted adversarial draw {d:?} not realizable"));
            }
        }
        Err(GenError::NotGraphical {
            k,
            prefix_sum,
            bound,
            ..
        }) => {
            if k == 0 || prefix_sum <= bound {
                return Err(format!(
                    "NotGraphical witness is not a violation: k={k}, \
                     {prefix_sum} <= {bound}"
                ));
            }
        }
        Err(e) => return Err(format!("adversarial draw failed with wrong variant: {e}")),
    }
    Ok(())
}
