//! Span-tree well-formedness: every trace stream the engines emit must
//! form proper per-thread LIFO trees — unique ids, parents that exist,
//! exits matching the innermost open span, timestamps that never run
//! backwards within a span.
//!
//! The verifier here is deliberately independent of the bench crate's
//! JSONL checker: it consumes raw [`TraceEvent`]s and re-derives the
//! stream contract from scratch, so the two implementations cross-check
//! each other through the shared format.

use crate::gen;
use crate::invariant::{Check, Suite};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use topogen_core::ctx::RunCtx;
use topogen_hierarchy::PathMode;
use topogen_par::{par_map_threads, TraceEvent, TraceSink};

/// The `trace` suite.
pub fn suite() -> Suite {
    Suite {
        name: "trace",
        description: "engine trace streams form well-formed per-thread LIFO span trees",
        invariants: vec![
            Box::new(Check {
                name: "engine-spans-well-formed",
                property: "a traced hierarchy + metric run emits a well-formed span \
                           stream: unique ids, live parents, per-thread LIFO nesting, \
                           every span closed",
                oracle: "an independent stream verifier (re-derived, not bench's)",
                shrink_hint: "shrink the graph, then drop the metric run, then threads",
                max_cases: 24,
                run: engine_spans_well_formed,
            }),
            Box::new(Check {
                name: "worker-spans-parented",
                property: "spans opened inside par_map workers parent under the \
                           caller's enclosing span, across threads",
                oracle: "the Enter events' parent ids against the root span's id",
                shrink_hint: "shrink the item count, then the thread count",
                max_cases: 24,
                run: worker_spans_parented,
            }),
        ],
    }
}

/// Re-derived stream contract. `events` is a sink snapshot: per-tid
/// order is emission order; cross-tid interleaving is arbitrary.
fn verify_stream(events: &[TraceEvent]) -> Result<(), String> {
    let mut entered: HashSet<u64> = HashSet::new();
    let mut enter_t: HashMap<u64, u64> = HashMap::new();
    for ev in events {
        if let TraceEvent::Enter { id, t_ns, .. } = ev {
            if *id == 0 {
                return Err("span id 0 is reserved for 'no parent'".into());
            }
            if !entered.insert(*id) {
                return Err(format!("span id {id} entered twice"));
            }
            enter_t.insert(*id, *t_ns);
        }
    }
    for ev in events {
        if let TraceEvent::Enter { id, parent, .. } = ev {
            if *parent != 0 && !entered.contains(parent) {
                return Err(format!("span {id} names unknown parent {parent}"));
            }
            if parent == id {
                return Err(format!("span {id} is its own parent"));
            }
        }
    }
    // Per-thread LIFO: an exit must close that thread's innermost open
    // span, and the closing thread must be the entering thread.
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut exited: HashSet<u64> = HashSet::new();
    for ev in events {
        match ev {
            TraceEvent::Enter { id, tid, .. } => stacks.entry(*tid).or_default().push(*id),
            TraceEvent::Exit { id, tid, t_ns, .. } => {
                let stack = stacks.entry(*tid).or_default();
                match stack.pop() {
                    Some(top) if top == *id => {}
                    Some(top) => {
                        return Err(format!(
                            "tid {tid}: exit of {id} but innermost open span is {top}"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "tid {tid}: exit of {id} with no span open on this thread"
                        ))
                    }
                }
                if !exited.insert(*id) {
                    return Err(format!("span {id} exited twice"));
                }
                match enter_t.get(id) {
                    None => return Err(format!("exit of never-entered span {id}")),
                    Some(start) if t_ns < start => {
                        return Err(format!("span {id} exits before it enters"))
                    }
                    Some(_) => {}
                }
            }
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid}: {} span(s) never closed: {stack:?}",
                stack.len()
            ));
        }
    }
    Ok(())
}

fn engine_spans_well_formed(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let n = 8 + rng.below(24);
    let g = gen::connected_graph(n, rng.below(n + 1), rng.next() as u64);
    let sink = Arc::new(TraceSink::new());
    let ctx = RunCtx::new().with_trace(sink.clone());
    ctx.scope(|| {
        let _root = topogen_par::trace::span("check-root");
        let _ = topogen_hierarchy::link_values_threads(&g, &PathMode::Shortest, Some(3), None);
    });
    let events = sink.snapshot();
    if events.is_empty() {
        return Err("traced engine run emitted no events".into());
    }
    if !events
        .iter()
        .any(|e| matches!(e, TraceEvent::Enter { name, .. } if *name == "hier-cover"))
    {
        return Err("engine emitted no hier-cover span under an installed sink".into());
    }
    verify_stream(&events)
}

fn worker_spans_parented(seed: u64) -> Result<(), String> {
    let mut rng = gen::Lcg::new(seed);
    let items: Vec<usize> = (0..4 + rng.below(29)).collect();
    let threads = 1 + rng.below(4);
    let sink = Arc::new(TraceSink::new());
    let root_id = topogen_par::trace::with_sink(Some(sink.clone()), || {
        let root = topogen_par::trace::span("check-fanout");
        let _ = par_map_threads(&items, Some(threads), |&i| {
            let _leaf = topogen_par::trace::span_labeled("check-item", &i.to_string());
            i * 2
        });
        root.id()
    });
    let events = sink.snapshot();
    verify_stream(&events)?;
    let mut leaves = 0;
    for ev in &events {
        if let TraceEvent::Enter { name, parent, .. } = ev {
            if *name == "check-item" {
                leaves += 1;
                if *parent != root_id {
                    return Err(format!(
                        "worker span parented under {parent}, not the caller's \
                         span {root_id}"
                    ));
                }
            }
        }
    }
    if leaves != items.len() {
        return Err(format!(
            "expected {} worker spans, saw {leaves}",
            items.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(id: u64, parent: u64, tid: u64, t_ns: u64) -> TraceEvent {
        TraceEvent::Enter {
            id,
            parent,
            tid,
            name: "t",
            label: None,
            t_ns,
        }
    }

    fn exit(id: u64, tid: u64, t_ns: u64) -> TraceEvent {
        TraceEvent::Exit {
            id,
            tid,
            name: "t",
            t_ns,
            dur_ns: 0,
        }
    }

    #[test]
    fn verifier_accepts_proper_nesting_and_rejects_malformed_streams() {
        // Proper: two threads, nested + interleaved.
        let ok = vec![
            enter(1, 0, 1, 0),
            enter(3, 1, 2, 5),
            exit(3, 2, 9),
            enter(2, 1, 1, 4),
            exit(2, 1, 8),
            exit(1, 1, 10),
        ];
        assert!(verify_stream(&ok).is_ok());

        // Crossed exits on one thread.
        let crossed = vec![
            enter(1, 0, 1, 0),
            enter(2, 1, 1, 1),
            exit(1, 1, 2),
            exit(2, 1, 3),
        ];
        assert!(verify_stream(&crossed).is_err());

        // Unknown parent.
        assert!(verify_stream(&[enter(2, 7, 1, 0), exit(2, 1, 1)]).is_err());
        // Duplicate id.
        assert!(verify_stream(&[
            enter(1, 0, 1, 0),
            exit(1, 1, 1),
            enter(1, 0, 1, 2),
            exit(1, 1, 3)
        ])
        .is_err());
        // Leaked (never-closed) span.
        assert!(verify_stream(&[enter(1, 0, 1, 0)]).is_err());
        // Exit on the wrong thread.
        assert!(verify_stream(&[enter(1, 0, 1, 0), exit(1, 2, 1)]).is_err());
    }
}
