//! The registered suites, one module per subsystem under check.

pub mod codec;
pub mod degseq;
pub mod hierarchy;
pub mod kernels;
pub mod scale;
pub mod store;
pub mod threads;
pub mod trace;
