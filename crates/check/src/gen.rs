//! Shared arbitrary-graph generators: the seeded builders every
//! invariant derives its cases from, plus the proptest strategies that
//! the workspace's property tests were previously duplicating inline.
//!
//! Everything is a pure function of its seed — the same seed always
//! rebuilds the same case, which is what makes the runner's
//! `TOPOGEN_CHECK=suite:invariant:seed` lines complete repros.

use proptest::prelude::*;
use topogen_graph::{Graph, NodeId};

/// The tiny deterministic generator behind every seeded case: a 64-bit
/// LCG (Knuth's MMIX multiplier) returning the well-mixed high bits.
pub struct Lcg {
    state: u64,
}

impl Lcg {
    /// A stream seeded by `seed` (zero is mapped off the fixed point).
    pub fn new(seed: u64) -> Lcg {
        Lcg { state: seed | 1 }
    }

    /// Next 31 well-mixed bits, as the `usize` every index draw wants.
    #[allow(clippy::should_implement_trait)] // not an Iterator: never ends, infallible
    pub fn next(&mut self) -> usize {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33) as usize
    }

    /// A draw in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.next() % n
    }
}

/// Arbitrary simple graph: `n` nodes, up to `edges` random pairs,
/// self-loops filtered, duplicates collapsed by the CSR builder.
/// Possibly disconnected — the adversarial shape for BFS kernels.
pub fn sparse_graph(n: usize, edges: usize, seed: u64) -> Graph {
    let mut rng = Lcg::new(seed);
    let pairs = (0..edges)
        .map(|_| (rng.below(n) as NodeId, rng.below(n) as NodeId))
        .filter(|(u, v)| u != v);
    Graph::from_edges(n, pairs)
}

/// Arbitrary connected graph: a random tree (each node hangs off an
/// earlier one) plus `extra` random non-loop edges.
pub fn connected_graph(n: usize, extra: usize, seed: u64) -> Graph {
    let mut rng = Lcg::new(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1) + extra);
    for v in 1..n {
        edges.push((rng.below(v) as NodeId, v as NodeId));
    }
    for _ in 0..extra {
        let u = rng.below(n) as NodeId;
        let v = rng.below(n) as NodeId;
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, edges)
}

/// Proptest strategy: arbitrary (possibly disconnected) graph of up to
/// 30 nodes and up to 80 random edge pairs.
pub fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..30, 0usize..80, any::<u64>()).prop_map(|(n, edges, seed)| sparse_graph(n, edges, seed))
}

/// Proptest strategy: arbitrary connected graph of up to 30 nodes
/// (random tree plus `n` extra edges).
pub fn arb_connected() -> impl Strategy<Value = Graph> {
    (2usize..30, any::<u64>()).prop_map(|(n, seed)| connected_graph(n, n, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_graph::components::components;

    #[test]
    fn builders_are_deterministic_in_the_seed() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = connected_graph(17, 17, seed);
            let b = connected_graph(17, 17, seed);
            assert_eq!(a.node_count(), b.node_count());
            assert_eq!(a.edges(), b.edges());
            let c = sparse_graph(9, 20, seed);
            let d = sparse_graph(9, 20, seed);
            assert_eq!(c.edges(), d.edges());
        }
    }

    #[test]
    fn connected_graph_is_connected() {
        for seed in 0..32u64 {
            let g = connected_graph(2 + (seed as usize % 28), 5, seed);
            assert_eq!(components(&g).sizes.len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn sparse_graph_has_no_self_loops() {
        for seed in 0..16u64 {
            let g = sparse_graph(8, 40, seed);
            assert!(g.edges().iter().all(|e| e.a != e.b));
        }
    }
}
