//! Artifact-store glue: content hashes, binary payloads, and cache keys
//! for the expensive pipelines (topology builds, metric-curve suites,
//! link-value analyses).
//!
//! Everything here is deterministic: content hashes walk the exact
//! normalized edge lists, floats are stored as IEEE-754 bit patterns,
//! and cache keys render parameters through the `Generate` trait's
//! `canonical_params`. That is what makes a warm `repro` run
//! byte-identical to a cold one — a hit replays the exact bits the cold
//! run computed, and everything derived from them (signatures, stats)
//! is a pure function of those bits.
//!
//! Decoding is fail-open: any malformed or misaligned payload yields
//! `None` and the caller recomputes (and overwrites the entry). The
//! checksum layer below already rejects corrupted files; this layer
//! guards against semantic drift (e.g. an entry written by a different
//! graph shape than the key promised).

use crate::zoo::{AsOverlayData, BuiltTopology, Scale, TopologySpec};
use topogen_graph::Graph;
use topogen_metrics::CurvePoint;
use topogen_policy::rel::{AsAnnotations, Relationship};
use topogen_store::codec::{
    self, bytes_payload, f64_payload, graph_payload, u32_payload, ContainerWriter,
};
use topogen_store::fnv::Fnv1a;
use topogen_store::key::KeyBuilder;

// ---------------------------------------------------------------------------
// Content hashes
// ---------------------------------------------------------------------------

/// FNV-1a over a graph's normalized structure (node count + exact edge
/// list). O(m) — negligible next to the O(n·m) metric pipelines keyed
/// by it.
pub fn graph_hash(g: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(g.node_count() as u64);
    h.write_u64(g.edge_count() as u64);
    for e in g.edges() {
        h.write_u64(((e.a as u64) << 32) | e.b as u64);
    }
    h.finish()
}

fn rel_code(r: Relationship) -> u8 {
    match r {
        Relationship::CustomerOfB => 0,
        Relationship::ProviderOfB => 1,
        Relationship::Peer => 2,
        Relationship::Sibling => 3,
    }
}

fn rel_from_code(c: u8) -> Option<Relationship> {
    Some(match c {
        0 => Relationship::CustomerOfB,
        1 => Relationship::ProviderOfB,
        2 => Relationship::Peer,
        3 => Relationship::Sibling,
        _ => return None,
    })
}

fn annotation_codes(ann: &AsAnnotations, edge_count: usize) -> Vec<u8> {
    (0..edge_count).map(|i| rel_code(ann.by_index(i))).collect()
}

/// FNV-1a over per-edge relationship codes (edge order).
pub fn annotations_hash(ann: &AsAnnotations, edge_count: usize) -> u64 {
    topogen_store::fnv::fnv1a(&annotation_codes(ann, edge_count))
}

/// FNV-1a over a router→AS assignment vector.
pub fn router_as_hash(router_as: &[u32]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(router_as.len() as u64);
    for &v in router_as {
        h.write(&v.to_le_bytes());
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Canonical spec rendering
// ---------------------------------------------------------------------------

/// Scale tag folded into topology keys.
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Small => "small",
        Scale::Paper => "paper",
        Scale::Large => "large",
        Scale::Xl => "xl",
    }
}

/// Canonical `generator(params)` rendering of a spec. Parameterized
/// generators delegate to the `Generate` trait's `canonical_params`, so
/// any two specs that generate differently render differently.
pub fn spec_canonical(spec: &TopologySpec) -> String {
    use topogen_generators::Generate;
    match spec {
        TopologySpec::Tree { k, depth } => format!("tree(k={k},depth={depth})"),
        TopologySpec::Mesh { side } => format!("mesh(side={side})"),
        TopologySpec::Linear { n } => format!("linear(n={n})"),
        TopologySpec::Complete { n } => format!("complete(n={n})"),
        TopologySpec::Random { n, p } => format!("random(n={n},p={p:?})"),
        TopologySpec::Waxman(p) => format!("waxman({})", p.canonical_params()),
        TopologySpec::TransitStub(p) => format!("transit-stub({})", p.canonical_params()),
        TopologySpec::Tiers(p) => format!("tiers({})", p.canonical_params()),
        TopologySpec::Plrg(p) => format!("plrg({})", p.canonical_params()),
        TopologySpec::Ba(p) => format!("ba({})", p.canonical_params()),
        TopologySpec::AlbertBarabasi(p) => format!("albert-barabasi({})", p.canonical_params()),
        TopologySpec::Brite(p) => format!("brite({})", p.canonical_params()),
        TopologySpec::Glp(p) => format!("glp({})", p.canonical_params()),
        TopologySpec::Inet(p) => format!("inet({})", p.canonical_params()),
        TopologySpec::NLevel(p) => format!("n-level({})", p.canonical_params()),
        TopologySpec::PlrgRewired(inner) => format!("plrg-rewired({})", spec_canonical(inner)),
        TopologySpec::MeasuredAs => "measured-as".to_string(),
        TopologySpec::MeasuredRl => "measured-rl".to_string(),
    }
}

/// Cache key for a built topology.
pub fn topology_key(spec: &TopologySpec, scale: Scale, seed: u64) -> String {
    KeyBuilder::new("topology")
        .field("gen", &spec_canonical(spec))
        .field("scale", scale_tag(scale))
        .u64("seed", seed)
        .finish()
}

// ---------------------------------------------------------------------------
// Topology payloads
// ---------------------------------------------------------------------------

/// Serialize a built topology (graph + optional annotations, router→AS
/// map, and AS overlay) as one `.tgr` container.
pub fn encode_topology(t: &BuiltTopology) -> Vec<u8> {
    let mut w = ContainerWriter::new();
    w.section(codec::SEC_GRAPH, &graph_payload(&t.graph));
    if let Some(ann) = &t.annotations {
        w.section(
            codec::SEC_ANNOTATIONS,
            &bytes_payload(&annotation_codes(ann, t.graph.edge_count())),
        );
    }
    if let Some(ras) = &t.router_as {
        w.section(codec::SEC_ROUTER_AS, &u32_payload(ras));
    }
    if let Some(ov) = &t.as_overlay {
        w.section(codec::SEC_OVERLAY_GRAPH, &graph_payload(&ov.as_graph));
        w.section(
            codec::SEC_OVERLAY_ANNOTATIONS,
            &bytes_payload(&annotation_codes(&ov.annotations, ov.as_graph.edge_count())),
        );
    }
    w.finish()
}

fn decode_annotations(payload: &[u8], g: &Graph) -> Option<AsAnnotations> {
    let codes = codec::bytes_from_payload(payload).ok()?;
    if codes.len() != g.edge_count() {
        return None;
    }
    let rels: Option<Vec<Relationship>> = codes.into_iter().map(rel_from_code).collect();
    Some(AsAnnotations::new(g, rels?))
}

/// Decode a cached topology for `spec`. `None` (caller recomputes) on
/// any structural mismatch.
pub fn decode_topology(bytes: &[u8], spec: &TopologySpec) -> Option<BuiltTopology> {
    let sections = codec::read_sections(bytes).ok()?;
    let graph =
        codec::graph_from_payload(codec::find_section(&sections, codec::SEC_GRAPH)?).ok()?;
    let annotations = match codec::find_section(&sections, codec::SEC_ANNOTATIONS) {
        Some(p) => Some(decode_annotations(p, &graph)?),
        None => None,
    };
    let router_as = match codec::find_section(&sections, codec::SEC_ROUTER_AS) {
        Some(p) => {
            let v = codec::u32_from_payload(p).ok()?;
            if v.len() != graph.node_count() {
                return None;
            }
            Some(v)
        }
        None => None,
    };
    let as_overlay = match codec::find_section(&sections, codec::SEC_OVERLAY_GRAPH) {
        Some(p) => {
            let as_graph = codec::graph_from_payload(p).ok()?;
            let ann = decode_annotations(
                codec::find_section(&sections, codec::SEC_OVERLAY_ANNOTATIONS)?,
                &as_graph,
            )?;
            Some(AsOverlayData {
                as_graph,
                annotations: ann,
            })
        }
        None => None,
    };
    Some(BuiltTopology {
        name: spec.name(),
        graph,
        annotations,
        router_as,
        as_overlay,
        spec: spec.clone(),
    })
}

// ---------------------------------------------------------------------------
// Metric-curve payloads
// ---------------------------------------------------------------------------

fn curve_payload(points: &[CurvePoint]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + 20 * points.len());
    codec::put_u64(&mut buf, points.len() as u64);
    for p in points {
        codec::put_u32(&mut buf, p.radius);
        codec::put_f64(&mut buf, p.avg_size);
        codec::put_f64(&mut buf, p.value);
    }
    buf
}

fn curve_from_payload(bytes: &[u8]) -> Option<Vec<CurvePoint>> {
    let mut r = codec::Reader::new(bytes);
    let c = r.count(20).ok()?;
    let mut out = Vec::with_capacity(c);
    for _ in 0..c {
        out.push(CurvePoint {
            radius: r.u32().ok()?,
            avg_size: r.f64().ok()?,
            value: r.f64().ok()?,
        });
    }
    (r.remaining() == 0).then_some(out)
}

/// Serialize the three metric curves of a suite run.
pub fn encode_curves(
    expansion: &[f64],
    resilience: &[CurvePoint],
    distortion: &[CurvePoint],
) -> Vec<u8> {
    encode_curves_ci(expansion, resilience, distortion, None)
}

/// Decode a cached suite-curves container.
#[allow(clippy::type_complexity)]
pub fn decode_curves(bytes: &[u8]) -> Option<(Vec<f64>, Vec<CurvePoint>, Vec<CurvePoint>)> {
    let sections = codec::read_sections(bytes).ok()?;
    let expansion =
        codec::f64_from_payload(codec::find_section(&sections, codec::SEC_EXPANSION)?).ok()?;
    let resilience = curve_from_payload(codec::find_section(&sections, codec::SEC_RESILIENCE)?)?;
    let distortion = curve_from_payload(codec::find_section(&sections, codec::SEC_DISTORTION)?)?;
    Some((expansion, resilience, distortion))
}

// ---------------------------------------------------------------------------
// Suite-partial payloads (checkpointed per-batch engine outputs)
// ---------------------------------------------------------------------------

/// Section tag for one checkpointed batch of per-job engine outputs.
const SEC_SUITE_PARTIAL: [u8; 4] = *b"SPRT";
/// Section tag for bootstrap 95% confidence intervals of the suite's
/// classification summary statistics.
const SEC_SUITE_CI: [u8; 4] = *b"CI95";

/// Deterministic store key for one center batch of a suite run: derived
/// from the full curves key (itself covering graph hash + every
/// sampling knob), the batch size, and the batch index — so a resumed
/// process recomputes exactly the batches the killed one never wrote.
pub fn suite_partial_key(curves_key: &str, batch_size: usize, index: usize) -> String {
    KeyBuilder::new("suite-partial")
        .u64("curves", topogen_store::fnv::fnv1a(curves_key.as_bytes()))
        .u64("batch_size", batch_size as u64)
        .u64("index", index as u64)
        .finish()
}

/// Serialize one batch of [`topogen_metrics::engine::JobOut`]s.
/// Bit-exact: float rows keep their IEEE-754 patterns (NaNs included),
/// so aggregation over decoded partials equals aggregation over the
/// originals.
pub fn encode_suite_partial(outs: &[topogen_metrics::engine::JobOut]) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u64(&mut buf, outs.len() as u64);
    for (rows, cum) in outs {
        buf.push(u8::from(rows.is_some()) | (u8::from(cum.is_some()) << 1));
        if let Some(rows) = rows {
            codec::put_u64(&mut buf, rows.len() as u64);
            for (size, vals) in rows {
                codec::put_f64(&mut buf, *size);
                codec::put_u64(&mut buf, vals.len() as u64);
                for v in vals {
                    codec::put_f64(&mut buf, *v);
                }
            }
        }
        if let Some(cum) = cum {
            codec::put_u64(&mut buf, cum.len() as u64);
            for &c in cum {
                codec::put_u64(&mut buf, c as u64);
            }
        }
    }
    let mut w = ContainerWriter::new();
    w.section(SEC_SUITE_PARTIAL, &buf);
    w.finish()
}

/// Decode a checkpointed batch; `None` (caller recomputes the batch) on
/// any malformed payload.
pub fn decode_suite_partial(bytes: &[u8]) -> Option<Vec<topogen_metrics::engine::JobOut>> {
    let sections = codec::read_sections(bytes).ok()?;
    let payload = codec::find_section(&sections, SEC_SUITE_PARTIAL)?;
    let mut r = codec::Reader::new(payload);
    let jobs = r.count(1).ok()?;
    let mut outs = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        let flags = *r.take(1).ok()?.first()?;
        let rows = if flags & 1 != 0 {
            let n = r.count(16).ok()?;
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let size = r.f64().ok()?;
                let k = r.count(8).ok()?;
                let mut vals = Vec::with_capacity(k);
                for _ in 0..k {
                    vals.push(r.f64().ok()?);
                }
                rows.push((size, vals));
            }
            Some(rows)
        } else {
            None
        };
        let cum = if flags & 2 != 0 {
            let n = r.count(8).ok()?;
            let mut cum = Vec::with_capacity(n);
            for _ in 0..n {
                cum.push(r.u64().ok()? as usize);
            }
            Some(cum)
        } else {
            None
        };
        outs.push((rows, cum));
    }
    (r.remaining() == 0).then_some(outs)
}

/// Serialize the three metric curves plus optional bootstrap CIs. With
/// `cis: None` the payload is byte-identical to [`encode_curves`] —
/// which is what keeps every small/paper cache entry (and everything
/// fingerprinted from it) unchanged; only sampled tiers carry the extra
/// section.
pub fn encode_curves_ci(
    expansion: &[f64],
    resilience: &[CurvePoint],
    distortion: &[CurvePoint],
    cis: Option<&crate::suite::SuiteCis>,
) -> Vec<u8> {
    let mut w = ContainerWriter::new();
    w.section(codec::SEC_EXPANSION, &f64_payload(expansion));
    w.section(codec::SEC_RESILIENCE, &curve_payload(resilience));
    w.section(codec::SEC_DISTORTION, &curve_payload(distortion));
    if let Some(ci) = cis {
        let mut buf = Vec::with_capacity(48);
        for &(lo, hi) in [&ci.expansion_rate, &ci.resilience_peak, &ci.distortion_last] {
            codec::put_f64(&mut buf, lo);
            codec::put_f64(&mut buf, hi);
        }
        w.section(SEC_SUITE_CI, &buf);
    }
    w.finish()
}

/// Decode the optional CI section of a cached suite-curves container;
/// `None` for pre-CI entries (every archived small/paper payload).
pub fn decode_curve_cis(bytes: &[u8]) -> Option<crate::suite::SuiteCis> {
    let sections = codec::read_sections(bytes).ok()?;
    let payload = codec::find_section(&sections, SEC_SUITE_CI)?;
    let mut r = codec::Reader::new(payload);
    let mut pairs = [(0.0, 0.0); 3];
    for p in &mut pairs {
        *p = (r.f64().ok()?, r.f64().ok()?);
    }
    (r.remaining() == 0).then_some(crate::suite::SuiteCis {
        expansion_rate: pairs[0],
        resilience_peak: pairs[1],
        distortion_last: pairs[2],
    })
}

// ---------------------------------------------------------------------------
// Link-value payloads
// ---------------------------------------------------------------------------

/// Serialize a link-value vector (edge order, pre-sort).
pub fn encode_link_values(values: &[f64]) -> Vec<u8> {
    let mut w = ContainerWriter::new();
    w.section(codec::SEC_LINK_VALUES, &f64_payload(values));
    w.finish()
}

/// Decode a cached link-value vector; `None` unless it holds exactly
/// `expected_len` values (the work graph's edge count).
pub fn decode_link_values(bytes: &[u8], expected_len: usize) -> Option<Vec<f64>> {
    let sections = codec::read_sections(bytes).ok()?;
    let v =
        codec::f64_from_payload(codec::find_section(&sections, codec::SEC_LINK_VALUES)?).ok()?;
    (v.len() == expected_len).then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::build;

    #[test]
    fn graph_hash_sensitive_to_structure() {
        let a = Graph::from_edges(4, vec![(0, 1), (1, 2)]);
        let b = Graph::from_edges(4, vec![(0, 1), (1, 3)]);
        let c = Graph::from_edges(5, vec![(0, 1), (1, 2)]);
        assert_ne!(graph_hash(&a), graph_hash(&b));
        assert_ne!(graph_hash(&a), graph_hash(&c));
        assert_eq!(graph_hash(&a), graph_hash(&a.clone()));
    }

    #[test]
    fn spec_canonical_distinguishes_params() {
        use topogen_generators::waxman::WaxmanParams;
        let a = TopologySpec::Waxman(WaxmanParams {
            n: 1200,
            alpha: 0.02,
            beta: 0.3,
        });
        let b = TopologySpec::Waxman(WaxmanParams {
            n: 1200,
            alpha: 0.02,
            beta: 0.31,
        });
        assert_ne!(spec_canonical(&a), spec_canonical(&b));
        assert_ne!(
            topology_key(&a, Scale::Small, 42),
            topology_key(&a, Scale::Small, 43)
        );
        assert_ne!(
            topology_key(&a, Scale::Small, 42),
            topology_key(&a, Scale::Paper, 42)
        );
        // The Modified variants key on the full inner spec.
        let m = TopologySpec::PlrgRewired(Box::new(a.clone()));
        assert!(spec_canonical(&m).contains("plrg-rewired(waxman("));
    }

    #[test]
    fn plain_topology_roundtrip() {
        let t = build(&TopologySpec::Mesh { side: 8 }, Scale::Small, 1);
        let back = decode_topology(&encode_topology(&t), &t.spec).unwrap();
        assert_eq!(back.graph.edges(), t.graph.edges());
        assert_eq!(back.name, t.name);
        assert!(back.annotations.is_none());
        assert!(back.router_as.is_none());
        assert!(back.as_overlay.is_none());
    }

    #[test]
    fn annotated_topology_roundtrip() {
        let t = build(&TopologySpec::MeasuredAs, Scale::Small, 7);
        let back = decode_topology(&encode_topology(&t), &t.spec).unwrap();
        assert_eq!(back.graph.edges(), t.graph.edges());
        let (a, b) = (
            back.annotations.as_ref().unwrap(),
            t.annotations.as_ref().unwrap(),
        );
        for i in 0..t.graph.edge_count() {
            assert_eq!(a.by_index(i), b.by_index(i));
        }
        assert_eq!(
            annotations_hash(a, back.graph.edge_count()),
            annotations_hash(b, t.graph.edge_count())
        );
    }

    #[test]
    fn rl_topology_roundtrip_with_overlay() {
        let t = build(&TopologySpec::MeasuredRl, Scale::Small, 7);
        let back = decode_topology(&encode_topology(&t), &t.spec).unwrap();
        assert_eq!(back.graph.edges(), t.graph.edges());
        assert_eq!(back.router_as, t.router_as);
        let (a, b) = (
            back.as_overlay.as_ref().unwrap(),
            t.as_overlay.as_ref().unwrap(),
        );
        assert_eq!(a.as_graph.edges(), b.as_graph.edges());
        assert_eq!(
            annotations_hash(&a.annotations, a.as_graph.edge_count()),
            annotations_hash(&b.annotations, b.as_graph.edge_count())
        );
    }

    #[test]
    fn curves_roundtrip_bit_exact() {
        let expansion = vec![1.0, 2.5, 1e-17, f64::INFINITY];
        let resilience = vec![CurvePoint {
            radius: 3,
            avg_size: 120.25,
            value: 0.125,
        }];
        let distortion = vec![
            CurvePoint {
                radius: 0,
                avg_size: 1.0,
                value: 1.0,
            },
            CurvePoint {
                radius: 9,
                avg_size: 55.5,
                value: 2.75,
            },
        ];
        let bytes = encode_curves(&expansion, &resilience, &distortion);
        let (e, r, d) = decode_curves(&bytes).unwrap();
        assert_eq!(e.len(), expansion.len());
        for (x, y) in e.iter().zip(&expansion) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].radius, 3);
        assert_eq!(r[0].avg_size.to_bits(), 120.25f64.to_bits());
        assert_eq!(d.len(), 2);
        assert_eq!(d[1].value.to_bits(), 2.75f64.to_bits());
    }

    /// End-to-end: with an ambient store installed, a second build +
    /// suite run replays from disk with results identical to the cold
    /// run — the acceptance invariant behind `repro --cache`.
    #[test]
    fn warm_run_matches_cold_run_exactly() {
        let _gate = crate::ctx::ambient_gate_for_tests();
        use crate::suite::{run_suite, SuiteParams};
        let spec = TopologySpec::Mesh { side: 10 };
        let params = SuiteParams::quick();
        // Cold, uncached reference.
        let cold_t = build(&spec, Scale::Small, 5);
        let cold = run_suite(&cold_t, &params);

        let dir = std::env::temp_dir().join(format!("topogen-core-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = std::sync::Arc::new(topogen_store::Store::open(&dir).unwrap());
        // The guard restores the previous ambient handle even if an
        // assertion below unwinds — no set/unset ordering hazard under
        // `cargo test` parallelism.
        let ambient = topogen_store::ambient::install(Some(store.clone()));
        // First cached run computes and persists; second replays.
        let t1 = build(&spec, Scale::Small, 5);
        let warm1 = run_suite(&t1, &params);
        let t2 = build(&spec, Scale::Small, 5);
        let warm2 = run_suite(&t2, &params);
        drop(ambient);

        assert_eq!(t2.graph.edges(), cold_t.graph.edges());
        assert!(warm2.timings.store_hits >= 1, "second run must hit");
        for (w, c) in [(&warm1, &cold), (&warm2, &cold)] {
            assert_eq!(w.expansion.len(), c.expansion.len());
            for (a, b) in w.expansion.iter().zip(&c.expansion) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(w.resilience.len(), c.resilience.len());
            for (a, b) in w.resilience.iter().zip(&c.resilience) {
                assert_eq!(a.radius, b.radius);
                assert_eq!(a.avg_size.to_bits(), b.avg_size.to_bits());
                assert_eq!(a.value.to_bits(), b.value.to_bits());
            }
            assert_eq!(w.signature.to_string(), c.signature.to_string());
        }
        let counters = store.counters().snapshot();
        assert!(counters.hits >= 2, "topology + curves hit: {counters:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn link_values_roundtrip_checks_length() {
        let v = vec![0.5, 0.25, 1.0 / 3.0];
        let bytes = encode_link_values(&v);
        let back = decode_link_values(&bytes, 3).unwrap();
        for (x, y) in back.iter().zip(&v) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Length mismatch → recompute.
        assert!(decode_link_values(&bytes, 4).is_none());
    }
}
