//! Explicit run contexts for the comparison framework.
//!
//! The build/measure pipeline historically consumed three pieces of
//! process-ambient state: the artifact store
//! ([`topogen_store::ambient`]), the per-thread deadline
//! ([`topogen_par::cancel`]), and the global trace sink
//! ([`topogen_par::trace`]). One batch CLI run per process made that
//! shape workable; a daemon serving concurrent requests — each with its
//! own deadline, its own progress stream, and a shared store — cannot
//! express itself through process globals.
//!
//! [`RunCtx`] is the explicit alternative: every entry point of the
//! pipeline has an `_in` variant taking `&RunCtx`
//! ([`zoo::build_in`](crate::zoo::build_in),
//! [`suite::run_suite_in`](crate::suite::run_suite_in),
//! [`hier::hierarchy_report_timed_in`](crate::hier::hierarchy_report_timed_in)),
//! and the original signatures remain as thin shims that snapshot the
//! ambient state via [`RunCtx::ambient`] — so the batch CLI behaves
//! exactly as before while concurrent callers construct disjoint
//! contexts.

use std::sync::Arc;

use topogen_metrics::engine::KernelPolicy;
use topogen_par::cancel::Deadline;
use topogen_par::{EngineCtx, Instrument, TraceSink};
use topogen_store::Store;

/// Everything one build/measure run depends on that used to be process
/// state. All handles optional; `RunCtx::default()` is a fully isolated
/// run — no caching, no deadline, no tracing, private counters, and the
/// process-default BFS kernel policy.
#[derive(Clone, Debug)]
pub struct RunCtx {
    /// Content-addressed artifact store consulted (and fed) by topology
    /// builds, metric-curve runs, and link-value analyses. `None`
    /// disables caching for the run.
    pub store: Option<Arc<Store>>,
    /// Cooperative deadline observed at engine checkpoints.
    pub deadline: Option<Deadline>,
    /// Span sink receiving the run's trace events. `None` means tracing
    /// off for this run, even when a process-global sink is installed.
    pub trace: Option<Arc<TraceSink>>,
    /// Counter sink engines report into; a private one is created per
    /// call when unset.
    pub instrument: Option<Arc<Instrument>>,
    /// BFS kernel policy for metric plans run under this context
    /// (scalar per-center BFS vs batched bitset kernels; `Auto` decides
    /// per plan). Initialized from the process default, which `repro
    /// --kernel` sets, so serve and batch paths share one choice.
    pub kernel: KernelPolicy,
    /// Edge-buffer memory budget (bytes) for topology builds. `Some`
    /// routes the streaming-capable generators through
    /// [`topogen_graph::stream::StreamingBuilder`] (bounded buffer,
    /// spill-to-disk runs, k-way merge); `None` builds in memory as
    /// always. Initialized from the process default, which `repro
    /// --mem-budget` sets. The built graph is identical either way.
    pub mem_budget: Option<u64>,
}

impl Default for RunCtx {
    fn default() -> Self {
        RunCtx {
            store: None,
            deadline: None,
            trace: None,
            instrument: None,
            kernel: topogen_graph::bfs_bitset::default_policy(),
            mem_budget: topogen_graph::stream::default_budget(),
        }
    }
}

impl RunCtx {
    /// A fully isolated context: no store, no deadline, no tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the ambient compatibility state — the process-global
    /// store, the calling thread's deadline, the active trace sink —
    /// into an explicit context. The legacy entry points route through
    /// this, which is what keeps the batch CLI byte-identical.
    pub fn ambient() -> Self {
        let engine = EngineCtx::ambient();
        RunCtx {
            store: topogen_store::ambient::active(),
            deadline: engine.deadline,
            trace: engine.trace,
            instrument: None,
            kernel: topogen_graph::bfs_bitset::default_policy(),
            mem_budget: topogen_graph::stream::default_budget(),
        }
    }

    /// Attach an artifact store.
    pub fn with_store(mut self, store: Arc<Store>) -> Self {
        self.store = Some(store);
        self
    }

    /// Attach a deadline.
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a trace sink.
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Attach a shared instrument.
    pub fn with_instrument(mut self, ins: Arc<Instrument>) -> Self {
        self.instrument = Some(ins);
        self
    }

    /// Override the BFS kernel policy for this run.
    pub fn with_kernel(mut self, policy: KernelPolicy) -> Self {
        self.kernel = policy;
        self
    }

    /// Override the build memory budget for this run (`None` disables
    /// streaming builds regardless of the process default).
    pub fn with_mem_budget(mut self, budget: Option<u64>) -> Self {
        self.mem_budget = budget;
        self
    }

    /// The engine-level slice of this context (deadline + trace) — what
    /// gets installed around engine work so `checkpoint()` and `span()`
    /// deep inside the parallel loops observe this run's state.
    pub fn engine(&self) -> EngineCtx {
        EngineCtx {
            deadline: self.deadline.clone(),
            trace: self.trace.clone(),
        }
    }

    /// Run `f` under this context's engine state (see
    /// [`EngineCtx::scope`]). The store is *not* ambient — it is only
    /// ever consumed explicitly by the `_in` entry points.
    pub fn scope<R>(&self, f: impl FnOnce() -> R) -> R {
        self.engine().scope(f)
    }
}

/// Serialize tests (across this crate's modules) that install an
/// ambient store: the RAII guard makes set/unset nest correctly, but
/// two tests overlapping in time would still observe each other's
/// handle mid-run.
#[cfg(test)]
pub(crate) fn ambient_gate_for_tests() -> std::sync::MutexGuard<'static, ()> {
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_is_isolated() {
        let ctx = RunCtx::new();
        assert!(ctx.store.is_none());
        assert!(ctx.deadline.is_none());
        assert!(ctx.trace.is_none());
        assert!(ctx.instrument.is_none());
    }

    #[test]
    fn scope_installs_engine_state() {
        let sink = Arc::new(TraceSink::new());
        let ctx = RunCtx::new().with_trace(sink.clone());
        ctx.scope(|| drop(topogen_par::trace::span("scoped")));
        assert_eq!(sink.snapshot().len(), 2);
    }

    #[test]
    fn ambient_snapshot_sees_installed_store() {
        let _gate = ambient_gate_for_tests();
        let dir = std::env::temp_dir().join(format!("topogen-runctx-{}", std::process::id()));
        let store = Arc::new(Store::open(&dir).unwrap());
        let guard = topogen_store::ambient::install(Some(store.clone()));
        let ctx = RunCtx::ambient();
        drop(guard);
        assert!(
            ctx.store.is_some_and(|s| Arc::ptr_eq(&s, &store)),
            "snapshot captured the ambient store"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
