//! The metric suite: expansion, resilience, distortion — with policy
//! variants for annotated topologies — and the resulting L/H signature.

use crate::classify::{
    classify_distortion, classify_expansion, classify_resilience, ClassifyThresholds, Signature,
};
use crate::report::TimingReport;
use crate::zoo::BuiltTopology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_metrics::balls::{sample_centers, BallSource, PlainBalls, PolicyBalls};
use topogen_metrics::engine::{BallPlan, DistortionMetric, ResilienceMetric};
use topogen_metrics::CurvePoint;

/// Sampling and budget knobs for one suite run.
#[derive(Clone, Copy, Debug)]
pub struct SuiteParams {
    /// Ball centers sampled per metric (the paper samples "a
    /// sufficiently large number of randomly chosen nodes" for big
    /// graphs).
    pub centers: usize,
    /// Sources sampled for the expansion average.
    pub expansion_sources: usize,
    /// Maximum ball radius (should exceed the diameter for full curves).
    pub max_radius: u32,
    /// Largest ball (in nodes) fed to the partitioner / distortion
    /// heuristics.
    pub max_ball_nodes: usize,
    /// Partitioner restarts.
    pub restarts: usize,
    /// Master seed.
    pub seed: u64,
}

impl SuiteParams {
    /// Fast settings for tests and CI (seconds per topology).
    pub fn quick() -> Self {
        SuiteParams {
            centers: 10,
            expansion_sources: 60,
            max_radius: 40,
            max_ball_nodes: 900,
            restarts: 2,
            seed: 0x51DE,
        }
    }

    /// Thorough settings for the figure reproductions.
    pub fn thorough() -> Self {
        SuiteParams {
            centers: 32,
            expansion_sources: 400,
            max_radius: 64,
            max_ball_nodes: 2_500,
            restarts: 4,
            seed: 0x51DE,
        }
    }
}

/// The three curves plus the signature and the run's instrumentation.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// E(h) per radius.
    pub expansion: Vec<f64>,
    /// R(n) curve.
    pub resilience: Vec<CurvePoint>,
    /// D(n) curve.
    pub distortion: Vec<CurvePoint>,
    /// The L/H signature under default thresholds.
    pub signature: Signature,
    /// Engine counters and phase wall times for this run.
    pub timings: TimingReport,
}

/// Run the three metrics over plain shortest-path balls, under the
/// ambient compatibility context. Equivalent to
/// `run_suite_in(&RunCtx::ambient(), …)`.
pub fn run_suite(t: &BuiltTopology, params: &SuiteParams) -> SuiteResult {
    run_suite_in(&crate::ctx::RunCtx::ambient(), t, params)
}

/// [`run_suite`] against an explicit context: curves are served from
/// and persisted to `ctx.store`, and the engines run under the
/// context's deadline and trace sink.
pub fn run_suite_in(
    ctx: &crate::ctx::RunCtx,
    t: &BuiltTopology,
    params: &SuiteParams,
) -> SuiteResult {
    let key = curves_key("plain", params)
        .hash("graph", crate::cache::graph_hash(&t.graph))
        .finish();
    with_curve_cache(ctx, key, || {
        let src = PlainBalls { graph: &t.graph };
        run_with_source(ctx, &src, t.graph.node_count(), params)
    })
}

/// Run the three metrics over policy-induced balls (Appendix E); the
/// topology must carry annotations.
///
/// # Panics
/// Panics if `t.annotations` is `None`.
pub fn run_suite_policy(t: &BuiltTopology, params: &SuiteParams) -> SuiteResult {
    run_suite_policy_in(&crate::ctx::RunCtx::ambient(), t, params)
}

/// [`run_suite_policy`] against an explicit context.
///
/// # Panics
/// Panics if `t.annotations` is `None`.
pub fn run_suite_policy_in(
    ctx: &crate::ctx::RunCtx,
    t: &BuiltTopology,
    params: &SuiteParams,
) -> SuiteResult {
    let ann = t
        .annotations
        .as_ref()
        .expect("policy suite needs an annotated topology");
    let key = curves_key("policy", params)
        .hash("graph", crate::cache::graph_hash(&t.graph))
        .hash(
            "ann",
            crate::cache::annotations_hash(ann, t.graph.edge_count()),
        )
        .finish();
    with_curve_cache(ctx, key, || {
        let src = PolicyBalls {
            graph: &t.graph,
            annotations: ann,
        };
        run_with_source(ctx, &src, t.graph.node_count(), params)
    })
}

/// Run the three metrics over policy-constrained *router-level* balls
/// (Appendix E's RL(Policy) construction); the topology must carry the
/// AS overlay data (`MeasuredRl` does).
///
/// # Panics
/// Panics if `t.router_as` or `t.as_overlay` is `None`.
pub fn run_suite_rl_policy(t: &BuiltTopology, params: &SuiteParams) -> SuiteResult {
    run_suite_rl_policy_in(&crate::ctx::RunCtx::ambient(), t, params)
}

/// [`run_suite_rl_policy`] against an explicit context.
///
/// # Panics
/// Panics if `t.router_as` or `t.as_overlay` is `None`.
pub fn run_suite_rl_policy_in(
    ctx: &crate::ctx::RunCtx,
    t: &BuiltTopology,
    params: &SuiteParams,
) -> SuiteResult {
    let router_as = t.router_as.as_ref().expect("RL policy needs router_as");
    let ov = t
        .as_overlay
        .as_ref()
        .expect("RL policy needs the AS overlay");
    let key = curves_key("rl-policy", params)
        .hash("graph", crate::cache::graph_hash(&t.graph))
        .hash("router_as", crate::cache::router_as_hash(router_as))
        .hash("overlay", crate::cache::graph_hash(&ov.as_graph))
        .hash(
            "overlay_ann",
            crate::cache::annotations_hash(&ov.annotations, ov.as_graph.edge_count()),
        )
        .finish();
    with_curve_cache(ctx, key, || {
        let overlay = topogen_policy::overlay::RouterOverlay::new(
            &t.graph,
            router_as,
            &ov.as_graph,
            &ov.annotations,
        );
        let src = topogen_metrics::balls::OverlayBalls { overlay };
        run_with_source(ctx, &src, t.graph.node_count(), params)
    })
}

/// Common key prefix for cached metric curves: ball mode + every
/// sampling/budget knob that shapes the curves.
fn curves_key(mode: &str, params: &SuiteParams) -> topogen_store::key::KeyBuilder {
    topogen_store::key::KeyBuilder::new("metric-curves")
        .field("mode", mode)
        .u64("centers", params.centers as u64)
        .u64("expansion_sources", params.expansion_sources as u64)
        .u64("max_radius", params.max_radius as u64)
        .u64("max_ball_nodes", params.max_ball_nodes as u64)
        .u64("restarts", params.restarts as u64)
        .u64("seed", params.seed)
}

/// Serve a suite run from the context's artifact store when possible.
///
/// The cached payload is the three curves, exact to the bit; the
/// signature is reclassified from them (a pure function, so hit and
/// cold results are identical). On a hit the timing report carries only
/// the store counters — the engine never ran.
fn with_curve_cache(
    ctx: &crate::ctx::RunCtx,
    key: String,
    compute: impl FnOnce() -> SuiteResult,
) -> SuiteResult {
    let Some(store) = ctx.store.clone() else {
        return compute();
    };
    if let Some(bytes) = store.get(&key) {
        if let Some((expansion, resilience, distortion)) = crate::cache::decode_curves(&bytes) {
            let th = ClassifyThresholds::default();
            let signature = Signature {
                expansion: classify_expansion(&expansion, &th),
                resilience: classify_resilience(&resilience, &th),
                distortion: classify_distortion(&distortion, &th),
            };
            let timings = TimingReport {
                store_hits: 1,
                store_bytes_read: bytes.len() as u64,
                ..Default::default()
            };
            return SuiteResult {
                expansion,
                resilience,
                distortion,
                signature,
                timings,
            };
        }
    }
    let mut r = compute();
    let bytes = crate::cache::encode_curves(&r.expansion, &r.resilience, &r.distortion);
    store.put(&key, &bytes);
    r.timings.store_misses += 1;
    r.timings.store_bytes_written += bytes.len() as u64;
    r
}

fn run_with_source<S: BallSource>(
    ctx: &crate::ctx::RunCtx,
    src: &S,
    n: usize,
    params: &SuiteParams,
) -> SuiteResult {
    // Sampling order (expansion sources, then ball centers) is part of
    // the seeded contract: reordering would shift every curve.
    let mut rng = StdRng::seed_from_u64(params.seed);
    let exp_sources = sample_centers(n, params.expansion_sources, &mut rng);
    let centers = sample_centers(n, params.centers, &mut rng);

    // One shared-ball plan: each center's balls are built once and feed
    // both per-ball metrics; expansion reuses them where the center
    // samples overlap.
    let res_metric = ResilienceMetric {
        restarts: params.restarts,
        max_ball_nodes: params.max_ball_nodes,
    };
    let dis_metric = DistortionMetric {
        max_ball_nodes: params.max_ball_nodes,
        use_bartal: true,
        polish: false,
    };
    // Kernel policy rides in on the context (shared by serve + batch);
    // the cap mirrors `max_ball_nodes`, above which both suite metrics
    // decline a ball — so the bitset path can skip constructing
    // oversized balls without changing any output bit.
    let out = BallPlan::new(src, params.max_radius, params.seed)
        .ball_centers(centers)
        .expansion_centers(exp_sources)
        .metric(&res_metric)
        .metric(&dis_metric)
        .kernel(ctx.kernel)
        .ball_size_cap(Some(params.max_ball_nodes))
        .context(ctx.engine())
        .run();
    let expansion = out.expansion;
    let resilience = out.curves[0].clone();
    let distortion = out.curves[1].clone();

    let th = ClassifyThresholds::default();
    let signature = Signature {
        expansion: classify_expansion(&expansion, &th),
        resilience: classify_resilience(&resilience, &th),
        distortion: classify_distortion(&distortion, &th),
    };
    SuiteResult {
        expansion,
        resilience,
        distortion,
        signature,
        timings: TimingReport::from(&out.report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build, Scale, TopologySpec};

    fn sig(spec: &TopologySpec) -> String {
        let t = build(spec, Scale::Small, 42);
        run_suite(&t, &SuiteParams::quick()).signature.to_string()
    }

    #[test]
    fn canonical_signatures_match_paper_table() {
        // §3.2.1's calibration table.
        assert_eq!(sig(&TopologySpec::Tree { k: 3, depth: 6 }), "HLL", "Tree");
        assert_eq!(sig(&TopologySpec::Mesh { side: 30 }), "LHH", "Mesh");
        assert_eq!(
            sig(&TopologySpec::Random { n: 1200, p: 0.0035 }),
            "HHH",
            "Random"
        );
        assert_eq!(sig(&TopologySpec::Linear { n: 600 }), "LLL", "Linear");
    }

    #[test]
    fn complete_graph_signature() {
        assert_eq!(sig(&TopologySpec::Complete { n: 150 }), "HHL", "Complete");
    }

    #[test]
    fn plrg_matches_internet_signature() {
        // §4.4's headline: PLRG (and the measured graphs) are HHL.
        assert_eq!(
            sig(&TopologySpec::Plrg(topogen_generators::plrg::PlrgParams {
                n: 1300,
                alpha: 2.246,
                max_degree: None
            })),
            "HHL",
            "PLRG"
        );
    }

    #[test]
    fn measured_as_is_hhl() {
        assert_eq!(sig(&TopologySpec::MeasuredAs), "HHL", "AS");
    }

    #[test]
    fn rl_policy_suite_keeps_signature() {
        // Appendix E's router-level policy construction: the RL graph
        // stays HHL under policy-constrained balls.
        let t = build(&TopologySpec::MeasuredRl, Scale::Small, 42);
        let r = run_suite_rl_policy(&t, &SuiteParams::quick());
        assert_eq!(r.signature.to_string(), "HHL");
    }

    #[test]
    fn policy_suite_runs_on_as() {
        let t = build(&TopologySpec::MeasuredAs, Scale::Small, 42);
        let r = run_suite_policy(&t, &SuiteParams::quick());
        // Policy routing does not change the classification (§4.4).
        assert_eq!(r.signature.to_string(), "HHL");
    }
}
