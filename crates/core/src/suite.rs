//! The metric suite: expansion, resilience, distortion — with policy
//! variants for annotated topologies — and the resulting L/H signature.

use crate::classify::{
    classify_distortion, classify_expansion, classify_resilience, ClassifyThresholds, Signature,
};
use crate::report::TimingReport;
use crate::zoo::BuiltTopology;
use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_metrics::balls::{sample_centers, BallSource, PlainBalls, PolicyBalls};
use topogen_metrics::engine::{BallPlan, DistortionMetric, ResilienceMetric};
use topogen_metrics::CurvePoint;

/// Sampling and budget knobs for one suite run.
#[derive(Clone, Copy, Debug)]
pub struct SuiteParams {
    /// Ball centers sampled per metric (the paper samples "a
    /// sufficiently large number of randomly chosen nodes" for big
    /// graphs).
    pub centers: usize,
    /// Sources sampled for the expansion average.
    pub expansion_sources: usize,
    /// Maximum ball radius (should exceed the diameter for full curves).
    pub max_radius: u32,
    /// Largest ball (in nodes) fed to the partitioner / distortion
    /// heuristics.
    pub max_ball_nodes: usize,
    /// Partitioner restarts.
    pub restarts: usize,
    /// Master seed.
    pub seed: u64,
    /// Centers per checkpointed batch. `Some(b)`: the engine's job list
    /// is collected `b` jobs at a time, each batch's outputs persisted
    /// under a deterministic [`crate::cache::suite_partial_key`] before
    /// the next starts — a killed run resumes from the last completed
    /// batch. `None` (the historical default) runs one-shot. Results
    /// are bit-identical either way (see
    /// [`topogen_metrics::engine::JobOut`]), so this knob is *not* part
    /// of the curves cache key.
    pub batch: Option<usize>,
    /// Bootstrap resamples for 95% CIs on the classification summary
    /// statistics. `None` (default, and always at small/paper) computes
    /// no CIs; sampled tiers set `Some(200)`. Never affects the curves.
    pub bootstrap: Option<u32>,
}

impl SuiteParams {
    /// Fast settings for tests and CI (seconds per topology).
    pub fn quick() -> Self {
        SuiteParams {
            centers: 10,
            expansion_sources: 60,
            max_radius: 40,
            max_ball_nodes: 900,
            restarts: 2,
            seed: 0x51DE,
            batch: None,
            bootstrap: None,
        }
    }

    /// Thorough settings for the figure reproductions.
    pub fn thorough() -> Self {
        SuiteParams {
            centers: 32,
            expansion_sources: 400,
            max_radius: 64,
            max_ball_nodes: 2_500,
            restarts: 4,
            seed: 0x51DE,
            batch: None,
            bootstrap: None,
        }
    }
}

/// Bootstrap 95% confidence intervals `(lo, hi)` for the three summary
/// statistics the L/H classification thresholds on — resampled over
/// centers, so they quantify center-sampling noise at the sampled
/// (large/xl) tiers. Rendered as `±` half-width columns next to the
/// signature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuiteCis {
    /// CI of the mid-curve expansion growth rate.
    pub expansion_rate: (f64, f64),
    /// CI of the large-ball resilience peak.
    pub resilience_peak: (f64, f64),
    /// CI of the headline (largest-ball) distortion value.
    pub distortion_last: (f64, f64),
}

impl SuiteCis {
    /// Render one interval as the `±` half-width string used in table
    /// columns ("-" when the interval is degenerate or non-finite).
    pub fn pm(interval: (f64, f64)) -> String {
        let half = (interval.1 - interval.0) / 2.0;
        if half.is_finite() {
            format!("±{half:.3}")
        } else {
            "-".to_string()
        }
    }
}

/// The three curves plus the signature and the run's instrumentation.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// E(h) per radius.
    pub expansion: Vec<f64>,
    /// R(n) curve.
    pub resilience: Vec<CurvePoint>,
    /// D(n) curve.
    pub distortion: Vec<CurvePoint>,
    /// The L/H signature under default thresholds.
    pub signature: Signature,
    /// Engine counters and phase wall times for this run.
    pub timings: TimingReport,
    /// Bootstrap 95% CIs of the classification summaries; present only
    /// when [`SuiteParams::bootstrap`] was set (sampled tiers).
    pub cis: Option<SuiteCis>,
}

/// Run the three metrics over plain shortest-path balls, under the
/// ambient compatibility context. Equivalent to
/// `run_suite_in(&RunCtx::ambient(), …)`.
pub fn run_suite(t: &BuiltTopology, params: &SuiteParams) -> SuiteResult {
    run_suite_in(&crate::ctx::RunCtx::ambient(), t, params)
}

/// [`run_suite`] against an explicit context: curves are served from
/// and persisted to `ctx.store`, and the engines run under the
/// context's deadline and trace sink.
pub fn run_suite_in(
    ctx: &crate::ctx::RunCtx,
    t: &BuiltTopology,
    params: &SuiteParams,
) -> SuiteResult {
    let key = curves_key("plain", params)
        .hash("graph", crate::cache::graph_hash(&t.graph))
        .finish();
    with_curve_cache(ctx, key.clone(), || {
        let src = PlainBalls { graph: &t.graph };
        run_with_source(ctx, &src, t.graph.node_count(), params, &key)
    })
}

/// The store key [`run_suite_in`] caches `t`'s plain curves under —
/// exposed so resume drills (the check suite's checkpoint invariant,
/// the CI kill-and-resume job) can evict exactly the final entry and
/// force the next run to rebuild from persisted batch partials.
pub fn plain_curves_key(t: &BuiltTopology, params: &SuiteParams) -> String {
    curves_key("plain", params)
        .hash("graph", crate::cache::graph_hash(&t.graph))
        .finish()
}

/// Run the three metrics over policy-induced balls (Appendix E); the
/// topology must carry annotations.
///
/// # Panics
/// Panics if `t.annotations` is `None`.
pub fn run_suite_policy(t: &BuiltTopology, params: &SuiteParams) -> SuiteResult {
    run_suite_policy_in(&crate::ctx::RunCtx::ambient(), t, params)
}

/// [`run_suite_policy`] against an explicit context.
///
/// # Panics
/// Panics if `t.annotations` is `None`.
pub fn run_suite_policy_in(
    ctx: &crate::ctx::RunCtx,
    t: &BuiltTopology,
    params: &SuiteParams,
) -> SuiteResult {
    let ann = t
        .annotations
        .as_ref()
        .expect("policy suite needs an annotated topology");
    let key = curves_key("policy", params)
        .hash("graph", crate::cache::graph_hash(&t.graph))
        .hash(
            "ann",
            crate::cache::annotations_hash(ann, t.graph.edge_count()),
        )
        .finish();
    with_curve_cache(ctx, key.clone(), || {
        let src = PolicyBalls {
            graph: &t.graph,
            annotations: ann,
        };
        run_with_source(ctx, &src, t.graph.node_count(), params, &key)
    })
}

/// Run the three metrics over policy-constrained *router-level* balls
/// (Appendix E's RL(Policy) construction); the topology must carry the
/// AS overlay data (`MeasuredRl` does).
///
/// # Panics
/// Panics if `t.router_as` or `t.as_overlay` is `None`.
pub fn run_suite_rl_policy(t: &BuiltTopology, params: &SuiteParams) -> SuiteResult {
    run_suite_rl_policy_in(&crate::ctx::RunCtx::ambient(), t, params)
}

/// [`run_suite_rl_policy`] against an explicit context.
///
/// # Panics
/// Panics if `t.router_as` or `t.as_overlay` is `None`.
pub fn run_suite_rl_policy_in(
    ctx: &crate::ctx::RunCtx,
    t: &BuiltTopology,
    params: &SuiteParams,
) -> SuiteResult {
    let router_as = t.router_as.as_ref().expect("RL policy needs router_as");
    let ov = t
        .as_overlay
        .as_ref()
        .expect("RL policy needs the AS overlay");
    let key = curves_key("rl-policy", params)
        .hash("graph", crate::cache::graph_hash(&t.graph))
        .hash("router_as", crate::cache::router_as_hash(router_as))
        .hash("overlay", crate::cache::graph_hash(&ov.as_graph))
        .hash(
            "overlay_ann",
            crate::cache::annotations_hash(&ov.annotations, ov.as_graph.edge_count()),
        )
        .finish();
    with_curve_cache(ctx, key.clone(), || {
        let overlay = topogen_policy::overlay::RouterOverlay::new(
            &t.graph,
            router_as,
            &ov.as_graph,
            &ov.annotations,
        );
        let src = topogen_metrics::balls::OverlayBalls { overlay };
        run_with_source(ctx, &src, t.graph.node_count(), params, &key)
    })
}

/// Common key prefix for cached metric curves: ball mode + every
/// sampling/budget knob that shapes the curves.
fn curves_key(mode: &str, params: &SuiteParams) -> topogen_store::key::KeyBuilder {
    let kb = topogen_store::key::KeyBuilder::new("metric-curves")
        .field("mode", mode)
        .u64("centers", params.centers as u64)
        .u64("expansion_sources", params.expansion_sources as u64)
        .u64("max_radius", params.max_radius as u64)
        .u64("max_ball_nodes", params.max_ball_nodes as u64)
        .u64("restarts", params.restarts as u64)
        .u64("seed", params.seed);
    // The bootstrap knob changes the cached *payload* (an extra CI
    // section) but never the curves; render it only when set so every
    // historical (small/paper) key stays byte-identical. `batch` is
    // deliberately absent: batched and one-shot runs produce the same
    // bits.
    match params.bootstrap {
        Some(b) => kb.u64("bootstrap", b as u64),
        None => kb,
    }
}

/// Serve a suite run from the context's artifact store when possible.
///
/// The cached payload is the three curves, exact to the bit; the
/// signature is reclassified from them (a pure function, so hit and
/// cold results are identical). On a hit the timing report carries only
/// the store counters — the engine never ran.
fn with_curve_cache(
    ctx: &crate::ctx::RunCtx,
    key: String,
    compute: impl FnOnce() -> SuiteResult,
) -> SuiteResult {
    let Some(store) = ctx.store.clone() else {
        return compute();
    };
    if let Some(bytes) = store.get(&key) {
        if let Some((expansion, resilience, distortion)) = crate::cache::decode_curves(&bytes) {
            let th = ClassifyThresholds::default();
            let signature = Signature {
                expansion: classify_expansion(&expansion, &th),
                resilience: classify_resilience(&resilience, &th),
                distortion: classify_distortion(&distortion, &th),
            };
            let timings = TimingReport {
                store_hits: 1,
                store_bytes_read: bytes.len() as u64,
                ..Default::default()
            };
            return SuiteResult {
                expansion,
                resilience,
                distortion,
                signature,
                timings,
                cis: crate::cache::decode_curve_cis(&bytes),
            };
        }
    }
    let mut r = compute();
    let bytes =
        crate::cache::encode_curves_ci(&r.expansion, &r.resilience, &r.distortion, r.cis.as_ref());
    store.put(&key, &bytes);
    r.timings.store_misses += 1;
    r.timings.store_bytes_written += bytes.len() as u64;
    r
}

fn run_with_source<S: BallSource>(
    ctx: &crate::ctx::RunCtx,
    src: &S,
    n: usize,
    params: &SuiteParams,
    cache_key: &str,
) -> SuiteResult {
    // Sampling order (expansion sources, then ball centers) is part of
    // the seeded contract: reordering would shift every curve.
    let mut rng = StdRng::seed_from_u64(params.seed);
    let exp_sources = sample_centers(n, params.expansion_sources, &mut rng);
    let centers = sample_centers(n, params.centers, &mut rng);

    // One shared-ball plan: each center's balls are built once and feed
    // both per-ball metrics; expansion reuses them where the center
    // samples overlap.
    let res_metric = ResilienceMetric {
        restarts: params.restarts,
        max_ball_nodes: params.max_ball_nodes,
    };
    let dis_metric = DistortionMetric {
        max_ball_nodes: params.max_ball_nodes,
        use_bartal: true,
        polish: false,
    };
    // Kernel policy rides in on the context (shared by serve + batch);
    // the cap mirrors `max_ball_nodes`, above which both suite metrics
    // decline a ball — so the bitset path can skip constructing
    // oversized balls without changing any output bit.
    let plan = BallPlan::new(src, params.max_radius, params.seed)
        .ball_centers(centers)
        .expansion_centers(exp_sources)
        .metric(&res_metric)
        .metric(&dis_metric)
        .kernel(ctx.kernel)
        .ball_size_cap(Some(params.max_ball_nodes))
        .context(ctx.engine());

    let (out, mut timings, outputs) = match params.batch {
        // Historical one-shot path, untouched: small/paper runs never
        // take the decomposed branch below.
        None if params.bootstrap.is_none() => {
            let out = plan.run();
            let timings = TimingReport::from(&out.report);
            (out, timings, None)
        }
        batch => {
            let jobs = plan.jobs();
            let chunk = batch.unwrap_or(jobs.len().max(1));
            let mut outputs = Vec::with_capacity(jobs.len());
            let mut timings = TimingReport::default();
            for (i, slice) in jobs.chunks(chunk.max(1)).enumerate() {
                // Serve completed batches from the store (that is the
                // whole restart story: a killed run left them behind),
                // compute and persist the rest before moving on.
                let pkey = ctx
                    .store
                    .as_ref()
                    .map(|_| crate::cache::suite_partial_key(cache_key, chunk, i));
                let cached = ctx.store.as_deref().zip(pkey.as_deref()).and_then(
                    |(store, pkey)| -> Option<Vec<topogen_metrics::engine::JobOut>> {
                        let bytes = store.get(pkey)?;
                        let outs = crate::cache::decode_suite_partial(&bytes)?;
                        (outs.len() == slice.len()).then(|| {
                            timings.store_hits += 1;
                            timings.store_bytes_read += bytes.len() as u64;
                            outs
                        })
                    },
                );
                match cached {
                    Some(mut outs) => outputs.append(&mut outs),
                    None => {
                        let (outs, report) = plan.run_collect(slice);
                        timings.merge(&TimingReport::from(&report));
                        if let (Some(store), Some(pkey)) = (ctx.store.as_deref(), pkey.as_deref()) {
                            let bytes = crate::cache::encode_suite_partial(&outs);
                            store.put(pkey, &bytes);
                            timings.store_misses += 1;
                            timings.store_bytes_written += bytes.len() as u64;
                        }
                        outputs.extend(outs);
                    }
                }
            }
            let out = plan.aggregate(&outputs, Default::default());
            (out, timings, Some((jobs, outputs)))
        }
    };
    let expansion = out.expansion;
    let resilience = out.curves[0].clone();
    let distortion = out.curves[1].clone();

    let th = ClassifyThresholds::default();
    let signature = Signature {
        expansion: classify_expansion(&expansion, &th),
        resilience: classify_resilience(&resilience, &th),
        distortion: classify_distortion(&distortion, &th),
    };
    let cis = match (params.bootstrap, &outputs) {
        (Some(resamples), Some((jobs, outs))) => Some(bootstrap_cis(
            jobs,
            outs,
            n,
            params.max_radius as usize + 1,
            resamples,
            params.seed,
        )),
        _ => None,
    };
    SuiteResult {
        expansion,
        resilience,
        distortion,
        signature,
        timings: std::mem::take(&mut timings),
        cis,
    }
}

/// Bootstrap the three classification summaries over centers: resample
/// expansion sources (for the growth rate) and ball centers (for the
/// resilience peak and distortion headline) with replacement,
/// recompute each statistic per resample through the same aggregation
/// the real curves use, and take the 2.5th/97.5th percentiles. Fully
/// seeded — the CIs are as deterministic as the curves themselves.
fn bootstrap_cis(
    jobs: &[(topogen_graph::NodeId, bool, bool)],
    outputs: &[topogen_metrics::engine::JobOut],
    n: usize,
    radii: usize,
    resamples: u32,
    seed: u64,
) -> SuiteCis {
    use rand::Rng;
    let exp_idx: Vec<usize> = (0..jobs.len()).filter(|&i| jobs[i].2).collect();
    let ball_idx: Vec<usize> = (0..jobs.len()).filter(|&i| jobs[i].1).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB007_57A9);
    let mut rate = Vec::with_capacity(resamples as usize);
    let mut peak = Vec::with_capacity(resamples as usize);
    let mut last = Vec::with_capacity(resamples as usize);
    for _ in 0..resamples {
        if !exp_idx.is_empty() {
            let denom = exp_idx.len() as f64 * n as f64;
            let mut curve = vec![0.0f64; radii];
            for _ in 0..exp_idx.len() {
                let j = exp_idx[rng.gen_range(0..exp_idx.len())];
                if let (_, Some(cum)) = &outputs[j] {
                    for (h, &c) in cum.iter().enumerate().take(radii) {
                        curve[h] += c as f64;
                    }
                }
            }
            for v in &mut curve {
                *v /= denom;
            }
            rate.push(topogen_metrics::expansion::expansion_growth_rate(&curve));
        }
        if !ball_idx.is_empty() {
            // Re-aggregate both per-ball metrics (resilience = column
            // 0, distortion = column 1) over the resampled centers,
            // mirroring BallPlan::aggregate's finite-only averaging.
            let picks: Vec<usize> = (0..ball_idx.len())
                .map(|_| ball_idx[rng.gen_range(0..ball_idx.len())])
                .collect();
            let curve_for = |mi: usize| -> Vec<CurvePoint> {
                (0..radii as u32)
                    .map(|h| {
                        let mut size_sum = 0.0;
                        let mut val_sum = 0.0;
                        let mut val_n = 0usize;
                        for &j in &picks {
                            if let (Some(rows), _) = &outputs[j] {
                                if let Some((s, vals)) = rows.get(h as usize) {
                                    if vals[mi].is_finite() {
                                        size_sum += *s;
                                        val_sum += vals[mi];
                                        val_n += 1;
                                    }
                                }
                            }
                        }
                        CurvePoint {
                            radius: h,
                            avg_size: if val_n > 0 {
                                size_sum / val_n as f64
                            } else {
                                0.0
                            },
                            value: if val_n > 0 {
                                val_sum / val_n as f64
                            } else {
                                f64::NAN
                            },
                        }
                    })
                    .collect()
            };
            peak.push(crate::classify::resilience_peak(&curve_for(0)).1);
            last.push(
                crate::classify::distortion_headline(&curve_for(1))
                    .map(|(_, v)| v)
                    .unwrap_or(f64::NAN),
            );
        }
    }
    SuiteCis {
        expansion_rate: percentile_interval(&mut rate),
        resilience_peak: percentile_interval(&mut peak),
        distortion_last: percentile_interval(&mut last),
    }
}

/// Nearest-rank 2.5%/97.5% interval over finite samples; `(NaN, NaN)`
/// when nothing finite was observed.
fn percentile_interval(samples: &mut Vec<f64>) -> (f64, f64) {
    samples.retain(|v| v.is_finite());
    if samples.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    samples.sort_by(f64::total_cmp);
    let b = samples.len();
    let lo = samples[((b as f64 * 0.025) as usize).min(b - 1)];
    let hi = samples[((b as f64 * 0.975).ceil() as usize)
        .saturating_sub(1)
        .min(b - 1)];
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build, Scale, TopologySpec};

    fn sig(spec: &TopologySpec) -> String {
        let t = build(spec, Scale::Small, 42);
        run_suite(&t, &SuiteParams::quick()).signature.to_string()
    }

    #[test]
    fn canonical_signatures_match_paper_table() {
        // §3.2.1's calibration table.
        assert_eq!(sig(&TopologySpec::Tree { k: 3, depth: 6 }), "HLL", "Tree");
        assert_eq!(sig(&TopologySpec::Mesh { side: 30 }), "LHH", "Mesh");
        assert_eq!(
            sig(&TopologySpec::Random { n: 1200, p: 0.0035 }),
            "HHH",
            "Random"
        );
        assert_eq!(sig(&TopologySpec::Linear { n: 600 }), "LLL", "Linear");
    }

    #[test]
    fn complete_graph_signature() {
        assert_eq!(sig(&TopologySpec::Complete { n: 150 }), "HHL", "Complete");
    }

    #[test]
    fn plrg_matches_internet_signature() {
        // §4.4's headline: PLRG (and the measured graphs) are HHL.
        assert_eq!(
            sig(&TopologySpec::Plrg(topogen_generators::plrg::PlrgParams {
                n: 1300,
                alpha: 2.246,
                max_degree: None
            })),
            "HHL",
            "PLRG"
        );
    }

    #[test]
    fn measured_as_is_hhl() {
        assert_eq!(sig(&TopologySpec::MeasuredAs), "HHL", "AS");
    }

    #[test]
    fn rl_policy_suite_keeps_signature() {
        // Appendix E's router-level policy construction: the RL graph
        // stays HHL under policy-constrained balls.
        let t = build(&TopologySpec::MeasuredRl, Scale::Small, 42);
        let r = run_suite_rl_policy(&t, &SuiteParams::quick());
        assert_eq!(r.signature.to_string(), "HHL");
    }

    #[test]
    fn batched_checkpointed_suite_matches_one_shot() {
        // The checkpointing contract: any batch size, with or without a
        // store, reproduces the one-shot curves bit-for-bit — and a
        // second run over the same store serves every batch from the
        // persisted partials without touching the engine.
        let t = build(&TopologySpec::Mesh { side: 14 }, Scale::Small, 21);
        let params = SuiteParams::quick();
        let one_shot = run_suite_in(&crate::ctx::RunCtx::new(), &t, &params);
        assert!(one_shot.cis.is_none());

        let fp = |r: &SuiteResult| {
            (
                r.expansion.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                r.resilience
                    .iter()
                    .map(|p| (p.radius, p.avg_size.to_bits(), p.value.to_bits()))
                    .collect::<Vec<_>>(),
                r.distortion
                    .iter()
                    .map(|p| (p.radius, p.avg_size.to_bits(), p.value.to_bits()))
                    .collect::<Vec<_>>(),
                r.signature.to_string(),
            )
        };

        for batch in [1usize, 3, 1000] {
            let mut p = params;
            p.batch = Some(batch);
            // No store: batched collection, nothing persisted.
            let r = run_suite_in(&crate::ctx::RunCtx::new(), &t, &p);
            assert_eq!(fp(&r), fp(&one_shot), "batch={batch}, no store");
        }

        let dir = std::env::temp_dir().join(format!("topogen-suite-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = std::sync::Arc::new(topogen_store::Store::open(&dir).unwrap());
        let ctx = crate::ctx::RunCtx::new().with_store(store);
        let mut p = params;
        p.batch = Some(4);
        p.bootstrap = Some(50);
        let cold = run_suite_in(&ctx, &t, &p);
        assert_eq!(fp(&cold), fp(&one_shot), "batched+stored");
        let cis = cold.cis.expect("bootstrap CIs at sampled settings");
        assert!(cis.expansion_rate.0 <= cis.expansion_rate.1);
        assert!(cis.resilience_peak.0 <= cis.resilience_peak.1);
        // Warm run: the final curves entry hits, CIs replay from it.
        let warm = run_suite_in(&ctx, &t, &p);
        assert_eq!(fp(&warm), fp(&one_shot), "warm replay");
        assert_eq!(warm.cis, Some(cis), "CIs survive the cache round-trip");
        assert!(warm.timings.store_hits >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_checkpoints_resume_without_recompute() {
        // Simulate a mid-suite kill: run with a store (partials land on
        // disk), delete only the final curves entry, then re-run. The
        // resumed run must rebuild the result purely from partial hits.
        let t = build(&TopologySpec::Mesh { side: 12 }, Scale::Small, 33);
        let mut p = SuiteParams::quick();
        p.batch = Some(3);
        let dir = std::env::temp_dir().join(format!("topogen-suite-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = std::sync::Arc::new(topogen_store::Store::open(&dir).unwrap());
        let ctx = crate::ctx::RunCtx::new().with_store(store.clone());
        let cold = run_suite_in(&ctx, &t, &p);
        // Drop the aggregate entry, keep the partials — the state a
        // SIGKILL between the last batch and the final put leaves.
        let key = curves_key("plain", &p)
            .hash("graph", crate::cache::graph_hash(&t.graph))
            .finish();
        store.remove(&key);
        let resumed = run_suite_in(&ctx, &t, &p);
        assert!(
            resumed.timings.store_hits >= 3,
            "all batches must replay: {:?}",
            resumed.timings.store_hits
        );
        for (a, b) in resumed.expansion.iter().zip(&cold.expansion) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(resumed.signature.to_string(), cold.signature.to_string());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_suite_runs_on_as() {
        let t = build(&TopologySpec::MeasuredAs, Scale::Small, 42);
        let r = run_suite_policy(&t, &SuiteParams::quick());
        // Policy routing does not change the classification (§4.4).
        assert_eq!(r.signature.to_string(), "HHL");
    }
}
