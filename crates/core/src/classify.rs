//! Low/High classification of the three basic metrics (§3.2.1, §4.4).
//!
//! The paper classifies each topology's expansion, resilience and
//! distortion as Low or High by visual comparison against the canonical
//! networks. We mechanize that with summary statistics of the metric
//! curves and thresholds calibrated so the canonical networks reproduce
//! the paper's table exactly:
//!
//! | Topology | Expansion | Resilience | Distortion |
//! |----------|-----------|------------|------------|
//! | Mesh     | L         | H          | H          |
//! | Random   | H         | H          | H          |
//! | Tree     | H         | L          | L          |
//! | Complete | H         | H          | L          |
//! | Linear   | L         | L          | L          |

use serde::{Deserialize, Serialize};
use topogen_metrics::expansion::expansion_growth_rate;
use topogen_metrics::resilience::resilience_growth_exponent;
use topogen_metrics::CurvePoint;

/// Low or High.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Level {
    /// Low.
    L,
    /// High.
    H,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", if *self == Level::L { "L" } else { "H" })
    }
}

/// A topology's three-letter signature, e.g. `HHL` for the Internet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    /// Expansion level.
    pub expansion: Level,
    /// Resilience level.
    pub resilience: Level,
    /// Distortion level.
    pub distortion: Level,
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            self.expansion, self.resilience, self.distortion
        )
    }
}

/// Classification thresholds, calibrated on the canonical networks.
#[derive(Clone, Copy, Debug)]
pub struct ClassifyThresholds {
    /// Expansion is High when the mid-curve growth rate (mean
    /// `ln E(h+1)/E(h)` while 5% ≤ E ≤ 70%) is at least this. Measured:
    /// trees ≥ 0.29, random/PLRG ≥ 0.8; mesh ≈ 0.12, linear ≈ 0.02.
    pub expansion_rate: f64,
    /// Resilience is High when the log–log growth exponent of R(n) is at
    /// least this (random ≈ 1, mesh ≈ 0.55, Tiers ≈ 0.31–0.35 — all
    /// High; trees ≤ 0.25 and transit-stub ≤ 0.18 across seeds stay
    /// Low, so the boundary sits in the gap between them)…
    pub resilience_exponent: f64,
    /// …AND the final R value is at least this (trees/TS stay single
    /// digit).
    pub resilience_magnitude: f64,
    /// Distortion is High when the largest-ball distortion exceeds
    /// `distortion_factor · ln(ball size)` (mesh/random D grows like
    /// log n; tree-like graphs stay near-constant). Calibrated so that
    /// at n ≈ 1000 the boundary sits near 3 — between the measured
    /// graphs/Tiers (≈ 2–2.9) and Waxman/Random/Mesh (≈ 4–6.5).
    pub distortion_factor: f64,
}

impl Default for ClassifyThresholds {
    fn default() -> Self {
        ClassifyThresholds {
            expansion_rate: 0.2,
            resilience_exponent: 0.28,
            resilience_magnitude: 8.0,
            distortion_factor: 0.45,
        }
    }
}

/// Classify an expansion curve (values of E(h) per radius).
pub fn classify_expansion(curve: &[f64], t: &ClassifyThresholds) -> Level {
    if expansion_growth_rate(curve) >= t.expansion_rate {
        Level::H
    } else {
        Level::L
    }
}

/// Classify a resilience curve. High when R grows with ball size *and*
/// reaches a non-trivial magnitude, or when the large-ball cut already
/// exceeds `√n` outright (which catches dense graphs whose first ball
/// swallows everything — the complete graph's curve has no growth range
/// to fit a slope on). The magnitude is the *peak* per-radius average
/// among large balls (≥ half the largest measured average size) rather
/// than the final point: under the ball-size cap the last radii mix in
/// fringe centers with atypically small cuts, so a single tail point is
/// noisy while the large-ball peak is stable.
pub fn classify_resilience(curve: &[CurvePoint], t: &ClassifyThresholds) -> Level {
    let expo = resilience_growth_exponent(curve);
    let (n_max, r_big) = resilience_peak(curve);
    if (expo >= t.resilience_exponent && r_big >= t.resilience_magnitude)
        || r_big >= n_max.max(1.0).sqrt()
    {
        Level::H
    } else {
        Level::L
    }
}

/// The large-ball resilience summary `classify_resilience` thresholds
/// on: `(largest finite average ball size, peak R among balls at least
/// half that size)`. Public so the sampled-tier bootstrap resamples the
/// exact statistic the classification uses.
pub fn resilience_peak(curve: &[CurvePoint]) -> (f64, f64) {
    let finite: Vec<&CurvePoint> = curve.iter().filter(|p| p.value.is_finite()).collect();
    let n_max = finite.iter().map(|p| p.avg_size).fold(0.0, f64::max);
    let r_big = finite
        .iter()
        .filter(|p| p.avg_size >= 0.5 * n_max)
        .map(|p| p.value)
        .fold(0.0, f64::max);
    (n_max, r_big)
}

/// The distortion summary `classify_distortion` thresholds on: the last
/// finite curve point with a non-trivial ball (≥ 8 nodes), if any.
/// Public so the sampled-tier bootstrap resamples the exact statistic
/// the classification uses.
pub fn distortion_headline(curve: &[CurvePoint]) -> Option<(f64, f64)> {
    curve
        .iter()
        .rev()
        .find(|p| p.value.is_finite() && p.avg_size >= 8.0)
        .map(|p| (p.avg_size, p.value))
}

/// Classify a distortion curve.
pub fn classify_distortion(curve: &[CurvePoint], t: &ClassifyThresholds) -> Level {
    match distortion_headline(curve) {
        None => Level::L,
        Some((avg_size, value)) => {
            let threshold = t.distortion_factor * avg_size.ln();
            if value >= threshold {
                Level::H
            } else {
                Level::L
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cp(radius: u32, avg_size: f64, value: f64) -> CurvePoint {
        CurvePoint {
            radius,
            avg_size,
            value,
        }
    }

    #[test]
    fn signature_display() {
        let s = Signature {
            expansion: Level::H,
            resilience: Level::H,
            distortion: Level::L,
        };
        assert_eq!(s.to_string(), "HHL");
    }

    #[test]
    fn expansion_levels() {
        let t = ClassifyThresholds::default();
        // Exponential curve: E doubles per hop through the window.
        let exp: Vec<f64> = (0..12).map(|h| (0.001 * 2f64.powi(h)).min(1.0)).collect();
        assert_eq!(classify_expansion(&exp, &t), Level::H);
        // Quadratic (mesh-like) curve on 900 nodes.
        let mesh: Vec<f64> = (0..40)
            .map(|h| ((2 * h * h) as f64 / 900.0).min(1.0))
            .collect();
        assert_eq!(classify_expansion(&mesh, &t), Level::L);
    }

    #[test]
    fn resilience_levels() {
        let t = ClassifyThresholds::default();
        // Linear R(n) ~ n (random-like): High.
        let random: Vec<CurvePoint> = (1..8)
            .map(|h| cp(h, 4f64.powi(h as i32), 0.5 * 4f64.powi(h as i32)))
            .collect();
        assert_eq!(classify_resilience(&random, &t), Level::H);
        // Flat R ≈ 2 (tree-like): Low.
        let tree: Vec<CurvePoint> = (1..8).map(|h| cp(h, 3f64.powi(h as i32), 2.0)).collect();
        assert_eq!(classify_resilience(&tree, &t), Level::L);
        // Growing exponent but tiny magnitude: still Low.
        let tiny: Vec<CurvePoint> = (1..5)
            .map(|h| cp(h, (h * h) as f64, h as f64 * 0.5))
            .collect();
        assert_eq!(classify_resilience(&tiny, &t), Level::L);
    }

    #[test]
    fn distortion_levels() {
        let t = ClassifyThresholds::default();
        // D ≈ ln n (random/mesh): High.
        let high: Vec<CurvePoint> = (1..10)
            .map(|h| {
                let n = 3f64.powi(h as i32);
                cp(h, n, 0.8 * n.ln())
            })
            .collect();
        assert_eq!(classify_distortion(&high, &t), Level::H);
        // D ≈ 1.5 flat (tree-like): Low on any decent ball.
        let low: Vec<CurvePoint> = (1..10).map(|h| cp(h, 3f64.powi(h as i32), 1.5)).collect();
        assert_eq!(classify_distortion(&low, &t), Level::L);
        // No usable points: Low by convention.
        assert_eq!(classify_distortion(&[], &t), Level::L);
    }

    #[test]
    fn level_display() {
        assert_eq!(Level::L.to_string(), "L");
        assert_eq!(Level::H.to_string(), "H");
    }
}
