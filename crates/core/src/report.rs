//! Rendering and serialization of experiment outputs.
//!
//! Every figure/table reproduction emits one of these records; the
//! `repro` binary prints the text rendering and can dump the JSON for
//! archival (EXPERIMENTS.md quotes these outputs).

use serde::{Deserialize, Serialize};

/// A named data series (one curve of a figure).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (the paper's legend entry, e.g. "PLRG").
    pub label: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values (NaN-free: unavailable points are omitted).
    pub y: Vec<f64>,
}

impl Series {
    /// Build from parallel slices, dropping non-finite points.
    pub fn new(label: impl Into<String>, x: &[f64], y: &[f64]) -> Series {
        assert_eq!(x.len(), y.len());
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (&a, &b) in x.iter().zip(y) {
            if a.is_finite() && b.is_finite() {
                xs.push(a);
                ys.push(b);
            }
        }
        Series {
            label: label.into(),
            x: xs,
            y: ys,
        }
    }
}

/// A reproduced figure: several series plus axis labels.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FigureData {
    /// Experiment id, e.g. "fig2-expansion-canonical".
    pub id: String,
    /// Axis labels.
    pub x_label: String,
    /// Axis labels.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

/// One engine phase's accumulated wall time (serializable mirror of
/// [`topogen_par::PhaseTiming`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingPhase {
    /// Phase name (`"balls"`, `"distances"`, a metric's name, `"total"`).
    pub name: String,
    /// Accumulated wall time in seconds (summed across worker threads).
    pub seconds: f64,
}

/// Per-run instrumentation from the parallel engines: traversal and
/// ball-construction counts from the shared-ball metrics engine, the
/// hierarchy stage's DAG/pair/arena volumes, and per-phase wall times.
/// Serializable mirror of [`topogen_par::InstrumentReport`]; the
/// `repro` binary prints it with `--timings` and archives it as
/// `BENCH_*.json`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimingReport {
    /// Distance-field computations performed (one traversal each).
    pub bfs_runs: u64,
    /// Ball subgraphs constructed.
    pub balls_built: u64,
    /// Reuses of shared per-center work by additional consumers.
    pub ball_cache_hits: u64,
    /// Partitioner restarts performed by resilience consumers.
    pub partitioner_restarts: u64,
    /// Path-DAG states visited by the link-value traversal stage (§5).
    pub dag_states: u64,
    /// (source, target) pairs accumulated into traversal sets.
    pub pairs_accumulated: u64,
    /// Bytes held by traversal-set arenas.
    pub arena_bytes: u64,
    /// Per-phase accumulated wall times.
    pub phases: Vec<TimingPhase>,
}

impl From<&topogen_par::InstrumentReport> for TimingReport {
    fn from(r: &topogen_par::InstrumentReport) -> Self {
        TimingReport {
            bfs_runs: r.bfs_runs,
            balls_built: r.balls_built,
            ball_cache_hits: r.ball_cache_hits,
            partitioner_restarts: r.partitioner_restarts,
            dag_states: r.dag_states,
            pairs_accumulated: r.pairs_accumulated,
            arena_bytes: r.arena_bytes,
            phases: r
                .phases
                .iter()
                .map(|p| TimingPhase {
                    name: p.name.clone(),
                    seconds: p.seconds,
                })
                .collect(),
        }
    }
}

impl TimingReport {
    /// Merge another report into this one (summing counters and phases),
    /// for aggregating per-topology runs into an experiment-level report.
    pub fn merge(&mut self, other: &TimingReport) {
        self.bfs_runs += other.bfs_runs;
        self.balls_built += other.balls_built;
        self.ball_cache_hits += other.ball_cache_hits;
        self.partitioner_restarts += other.partitioner_restarts;
        self.dag_states += other.dag_states;
        self.pairs_accumulated += other.pairs_accumulated;
        self.arena_bytes += other.arena_bytes;
        for p in &other.phases {
            if let Some(mine) = self.phases.iter_mut().find(|q| q.name == p.name) {
                mine.seconds += p.seconds;
            } else {
                self.phases.push(p.clone());
            }
        }
    }

    /// Render as aligned text lines (what `repro --timings` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "traversals {}  balls {}  cache-hits {}  partitioner-restarts {}\n",
            self.bfs_runs, self.balls_built, self.ball_cache_hits, self.partitioner_restarts
        ));
        if self.dag_states + self.pairs_accumulated + self.arena_bytes > 0 {
            out.push_str(&format!(
                "dag-states {}  pairs {}  arena-bytes {}\n",
                self.dag_states, self.pairs_accumulated, self.arena_bytes
            ));
        }
        for p in &self.phases {
            out.push_str(&format!("  {:<14} {:>9.3}s\n", p.name, p.seconds));
        }
        out
    }
}

/// A reproduced table: header plus rows of cells.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableData {
    /// Experiment id, e.g. "tab-signature".
    pub id: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    /// Render as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                line.push_str(&format!("{:w$}  ", c, w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Render a figure as aligned text columns (one block per series) —
/// gnuplot-ready and diffable.
pub fn render_figure(fig: &FigureData) -> String {
    let mut out = format!("# {}\n# x: {}   y: {}\n", fig.id, fig.x_label, fig.y_label);
    for s in &fig.series {
        out.push_str(&format!("\n# series: {}\n", s.label));
        for (x, y) in s.x.iter().zip(&s.y) {
            out.push_str(&format!("{x:.6e} {y:.6e}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_drops_nan() {
        let s = Series::new("t", &[1.0, 2.0, 3.0], &[1.0, f64::NAN, 3.0]);
        assert_eq!(s.x, vec![1.0, 3.0]);
        assert_eq!(s.y, vec![1.0, 3.0]);
    }

    #[test]
    fn table_renders_aligned() {
        let t = TableData {
            id: "t".into(),
            header: vec!["Topology".into(), "Sig".into()],
            rows: vec![
                vec!["Mesh".into(), "LHH".into()],
                vec!["PLRG".into(), "HHL".into()],
            ],
        };
        let r = t.render();
        assert!(r.contains("Topology"));
        assert!(r.lines().count() >= 4);
        // Columns aligned: both data lines have "LHH"/"HHL" at the same
        // offset.
        let lines: Vec<&str> = r.lines().collect();
        let off1 = lines[2].find("LHH").unwrap();
        let off2 = lines[3].find("HHL").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn figure_text_roundtrip() {
        let f = FigureData {
            id: "fig".into(),
            x_label: "h".into(),
            y_label: "E".into(),
            series: vec![Series::new("a", &[0.0, 1.0], &[0.5, 1.0])],
        };
        let txt = render_figure(&f);
        assert!(txt.contains("series: a"));
        assert!(txt.contains("5.000000e-1") || txt.contains("5e-1"));
        // JSON serializable.
        let j = serde_json::to_string(&f).unwrap();
        let back: FigureData = serde_json::from_str(&j).unwrap();
        assert_eq!(back.series[0].y, f.series[0].y);
    }

    #[test]
    #[should_panic]
    fn series_length_mismatch_panics() {
        let _ = Series::new("x", &[1.0], &[1.0, 2.0]);
    }
}
