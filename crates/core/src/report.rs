//! Rendering and serialization of experiment outputs.
//!
//! Every figure/table reproduction emits one of these records; the
//! `repro` binary prints the text rendering and can dump the JSON for
//! archival (EXPERIMENTS.md quotes these outputs).

use serde::{Content, DeError, Deserialize, Serialize};

/// The cell text rendered for a metric that could not be computed
/// because its topology failed to build or measure.
pub const FAILED_CELL: &str = "n/a (failed)";

/// One recorded failure inside an otherwise-successful table or figure:
/// the component (topology / series label) that failed and the redacted
/// reason. Rendered as a footnote; archived in the JSON.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// The failed component (topology name or series label).
    pub label: String,
    /// Redacted single-line failure reason.
    pub reason: String,
}

/// A named data series (one curve of a figure).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (the paper's legend entry, e.g. "PLRG").
    pub label: String,
    /// X values.
    pub x: Vec<f64>,
    /// Y values (NaN-free: unavailable points are omitted).
    pub y: Vec<f64>,
}

impl Series {
    /// Build from parallel slices, dropping non-finite points.
    pub fn new(label: impl Into<String>, x: &[f64], y: &[f64]) -> Series {
        assert_eq!(x.len(), y.len());
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (&a, &b) in x.iter().zip(y) {
            if a.is_finite() && b.is_finite() {
                xs.push(a);
                ys.push(b);
            }
        }
        Series {
            label: label.into(),
            x: xs,
            y: ys,
        }
    }
}

/// A reproduced figure: several series plus axis labels.
///
/// `failures` lists series that could not be computed (graceful
/// degradation); serialization omits the field entirely when empty so
/// fault-free archives stay byte-identical with historical ones — which
/// is why `Serialize`/`Deserialize` are hand-written here.
#[derive(Clone, Debug)]
pub struct FigureData {
    /// Experiment id, e.g. "fig2-expansion-canonical".
    pub id: String,
    /// Axis labels.
    pub x_label: String,
    /// Axis labels.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Components that failed instead of producing a series.
    pub failures: Vec<Degradation>,
}

impl FigureData {
    /// A figure with no failures recorded.
    pub fn new(
        id: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<Series>,
    ) -> FigureData {
        FigureData {
            id: id.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
            failures: Vec::new(),
        }
    }

    /// Record a failed component (its series is simply absent).
    pub fn note_failure(&mut self, label: impl Into<String>, reason: impl Into<String>) {
        self.failures.push(Degradation {
            label: label.into(),
            reason: reason.into(),
        });
    }
}

impl Serialize for FigureData {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("id".to_string(), self.id.to_content()),
            ("x_label".to_string(), self.x_label.to_content()),
            ("y_label".to_string(), self.y_label.to_content()),
            ("series".to_string(), self.series.to_content()),
        ];
        if !self.failures.is_empty() {
            fields.push(("failures".to_string(), self.failures.to_content()));
        }
        Content::Map(fields)
    }
}

impl Deserialize for FigureData {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let field = |k: &str| c.get(k).ok_or_else(|| DeError(format!("missing {k}")));
        Ok(FigureData {
            id: String::from_content(field("id")?)?,
            x_label: String::from_content(field("x_label")?)?,
            y_label: String::from_content(field("y_label")?)?,
            series: Vec::from_content(field("series")?)?,
            failures: match c.get("failures") {
                Some(f) => Vec::from_content(f)?,
                None => Vec::new(),
            },
        })
    }
}

/// One engine phase's accumulated wall time (serializable mirror of
/// [`topogen_par::PhaseTiming`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimingPhase {
    /// Phase name (`"balls"`, `"distances"`, a metric's name, `"total"`).
    pub name: String,
    /// Accumulated wall time in seconds (summed across worker threads).
    pub seconds: f64,
}

/// One span name's aggregated trace rollup: how many spans closed under
/// that name and their summed wall time. Serializable mirror of
/// [`topogen_par::SpanRollup`], folded into [`TimingReport`] when the
/// `repro` binary runs with `--trace`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanRollup {
    /// Span name (`"unit"`, `"ball-plan"`, `"store-put"`, ...).
    pub name: String,
    /// Number of spans closed under this name.
    pub count: u64,
    /// Summed wall time in seconds (across all threads).
    pub seconds: f64,
}

/// Per-run instrumentation from the parallel engines: traversal and
/// ball-construction counts from the shared-ball metrics engine, the
/// hierarchy stage's DAG/pair/arena volumes, and per-phase wall times.
/// Serializable mirror of [`topogen_par::InstrumentReport`]; the
/// `repro` binary prints it with `--timings` and archives it as
/// `BENCH_*.json`.
///
/// `spans` holds trace rollups and is only populated under `--trace`;
/// serialization omits it when empty so untraced `BENCH_*.json` files
/// stay byte-identical with historical ones (hence the manual impls).
#[derive(Clone, Debug, Default)]
pub struct TimingReport {
    /// Distance-field computations performed (one traversal each).
    pub bfs_runs: u64,
    /// Ball subgraphs constructed.
    pub balls_built: u64,
    /// Reuses of shared per-center work by additional consumers.
    pub ball_cache_hits: u64,
    /// Partitioner restarts performed by resilience consumers.
    pub partitioner_restarts: u64,
    /// Path-DAG states visited by the link-value traversal stage (§5).
    pub dag_states: u64,
    /// (source, target) pairs accumulated into traversal sets.
    pub pairs_accumulated: u64,
    /// Bytes held by traversal-set arenas.
    pub arena_bytes: u64,
    /// u64 bitset words read or written by the batched BFS kernels
    /// (zero on the scalar path).
    pub words_scanned: u64,
    /// Frontier-expansion passes performed by the batched BFS kernels
    /// (zero on the scalar path).
    pub frontier_passes: u64,
    /// Peak per-source scratch bytes of the hierarchy traversal stage
    /// (a max across sources; zero when no traversal ran).
    pub scratch_bytes: u64,
    /// Sorted runs spilled to disk by memory-budgeted streaming builds
    /// (zero without `--mem-budget`).
    pub spill_runs: u64,
    /// Artifact-store lookups served from disk (`repro --cache`).
    pub store_hits: u64,
    /// Artifact-store lookups that fell through to computation.
    pub store_misses: u64,
    /// Bytes of verified store entries read.
    pub store_bytes_read: u64,
    /// Bytes of new store entries written.
    pub store_bytes_written: u64,
    /// Per-phase accumulated wall times.
    pub phases: Vec<TimingPhase>,
    /// Trace span rollups (populated only under `--trace`).
    pub spans: Vec<SpanRollup>,
}

impl Serialize for TimingReport {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("bfs_runs".to_string(), self.bfs_runs.to_content()),
            ("balls_built".to_string(), self.balls_built.to_content()),
            (
                "ball_cache_hits".to_string(),
                self.ball_cache_hits.to_content(),
            ),
            (
                "partitioner_restarts".to_string(),
                self.partitioner_restarts.to_content(),
            ),
            ("dag_states".to_string(), self.dag_states.to_content()),
            (
                "pairs_accumulated".to_string(),
                self.pairs_accumulated.to_content(),
            ),
            ("arena_bytes".to_string(), self.arena_bytes.to_content()),
        ];
        // Bitset-kernel counters appeared after the first BENCH archives
        // were committed; emit them only when nonzero so scalar-path
        // output (and the archived baselines) stays byte-identical.
        if self.words_scanned > 0 {
            fields.push(("words_scanned".to_string(), self.words_scanned.to_content()));
        }
        if self.frontier_passes > 0 {
            fields.push((
                "frontier_passes".to_string(),
                self.frontier_passes.to_content(),
            ));
        }
        // Same pattern for the memory-accounting counters (compressed
        // hierarchy scratch, streaming-build spills): emit-when-nonzero
        // keeps every pre-existing archive byte-identical.
        if self.scratch_bytes > 0 {
            fields.push(("scratch_bytes".to_string(), self.scratch_bytes.to_content()));
        }
        if self.spill_runs > 0 {
            fields.push(("spill_runs".to_string(), self.spill_runs.to_content()));
        }
        fields.extend([
            ("store_hits".to_string(), self.store_hits.to_content()),
            ("store_misses".to_string(), self.store_misses.to_content()),
            (
                "store_bytes_read".to_string(),
                self.store_bytes_read.to_content(),
            ),
            (
                "store_bytes_written".to_string(),
                self.store_bytes_written.to_content(),
            ),
            ("phases".to_string(), self.phases.to_content()),
        ]);
        if !self.spans.is_empty() {
            fields.push(("spans".to_string(), self.spans.to_content()));
        }
        Content::Map(fields)
    }
}

impl Deserialize for TimingReport {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let field = |k: &str| c.get(k).ok_or_else(|| DeError(format!("missing {k}")));
        Ok(TimingReport {
            bfs_runs: u64::from_content(field("bfs_runs")?)?,
            balls_built: u64::from_content(field("balls_built")?)?,
            ball_cache_hits: u64::from_content(field("ball_cache_hits")?)?,
            partitioner_restarts: u64::from_content(field("partitioner_restarts")?)?,
            dag_states: u64::from_content(field("dag_states")?)?,
            pairs_accumulated: u64::from_content(field("pairs_accumulated")?)?,
            arena_bytes: u64::from_content(field("arena_bytes")?)?,
            // Absent in archives predating the bitset kernels (and in
            // all scalar-path output): default to zero.
            words_scanned: match c.get("words_scanned") {
                Some(v) => u64::from_content(v)?,
                None => 0,
            },
            frontier_passes: match c.get("frontier_passes") {
                Some(v) => u64::from_content(v)?,
                None => 0,
            },
            scratch_bytes: match c.get("scratch_bytes") {
                Some(v) => u64::from_content(v)?,
                None => 0,
            },
            spill_runs: match c.get("spill_runs") {
                Some(v) => u64::from_content(v)?,
                None => 0,
            },
            store_hits: u64::from_content(field("store_hits")?)?,
            store_misses: u64::from_content(field("store_misses")?)?,
            store_bytes_read: u64::from_content(field("store_bytes_read")?)?,
            store_bytes_written: u64::from_content(field("store_bytes_written")?)?,
            phases: Vec::from_content(field("phases")?)?,
            spans: match c.get("spans") {
                Some(s) => Vec::from_content(s)?,
                None => Vec::new(),
            },
        })
    }
}

impl From<&topogen_par::InstrumentReport> for TimingReport {
    fn from(r: &topogen_par::InstrumentReport) -> Self {
        TimingReport {
            bfs_runs: r.bfs_runs,
            balls_built: r.balls_built,
            ball_cache_hits: r.ball_cache_hits,
            partitioner_restarts: r.partitioner_restarts,
            dag_states: r.dag_states,
            pairs_accumulated: r.pairs_accumulated,
            arena_bytes: r.arena_bytes,
            words_scanned: r.words_scanned,
            frontier_passes: r.frontier_passes,
            scratch_bytes: r.scratch_bytes,
            spill_runs: r.spill_runs,
            store_hits: r.store_hits,
            store_misses: r.store_misses,
            store_bytes_read: r.store_bytes_read,
            store_bytes_written: r.store_bytes_written,
            phases: r
                .phases
                .iter()
                .map(|p| TimingPhase {
                    name: p.name.clone(),
                    seconds: p.seconds,
                })
                .collect(),
            spans: Vec::new(),
        }
    }
}

impl TimingReport {
    /// Fold trace rollups (from [`topogen_par::TraceSink::rollup_since`])
    /// into this report, converting nanoseconds to seconds.
    pub fn add_span_rollups(&mut self, rollups: &[topogen_par::SpanRollup]) {
        for r in rollups {
            let seconds = r.nanos as f64 / 1e9;
            if let Some(mine) = self.spans.iter_mut().find(|q| q.name == r.name) {
                mine.count += r.count;
                mine.seconds += seconds;
            } else {
                self.spans.push(SpanRollup {
                    name: r.name.to_string(),
                    count: r.count,
                    seconds,
                });
            }
        }
    }
}

impl TimingReport {
    /// Merge another report into this one (summing counters and phases),
    /// for aggregating per-topology runs into an experiment-level report.
    pub fn merge(&mut self, other: &TimingReport) {
        self.bfs_runs += other.bfs_runs;
        self.balls_built += other.balls_built;
        self.ball_cache_hits += other.ball_cache_hits;
        self.partitioner_restarts += other.partitioner_restarts;
        self.dag_states += other.dag_states;
        self.pairs_accumulated += other.pairs_accumulated;
        self.arena_bytes += other.arena_bytes;
        self.words_scanned += other.words_scanned;
        self.frontier_passes += other.frontier_passes;
        self.scratch_bytes = self.scratch_bytes.max(other.scratch_bytes);
        self.spill_runs += other.spill_runs;
        self.store_hits += other.store_hits;
        self.store_misses += other.store_misses;
        self.store_bytes_read += other.store_bytes_read;
        self.store_bytes_written += other.store_bytes_written;
        for p in &other.phases {
            if let Some(mine) = self.phases.iter_mut().find(|q| q.name == p.name) {
                mine.seconds += p.seconds;
            } else {
                self.phases.push(p.clone());
            }
        }
        for s in &other.spans {
            if let Some(mine) = self.spans.iter_mut().find(|q| q.name == s.name) {
                mine.count += s.count;
                mine.seconds += s.seconds;
            } else {
                self.spans.push(s.clone());
            }
        }
    }

    /// Render as aligned text lines (what `repro --timings` prints).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "traversals {}  balls {}  cache-hits {}  partitioner-restarts {}\n",
            self.bfs_runs, self.balls_built, self.ball_cache_hits, self.partitioner_restarts
        ));
        if self.dag_states + self.pairs_accumulated + self.arena_bytes > 0 {
            out.push_str(&format!(
                "dag-states {}  pairs {}  arena-bytes {}\n",
                self.dag_states, self.pairs_accumulated, self.arena_bytes
            ));
        }
        if self.words_scanned + self.frontier_passes > 0 {
            out.push_str(&format!(
                "bitset words-scanned {}  frontier-passes {}\n",
                self.words_scanned, self.frontier_passes
            ));
        }
        if self.scratch_bytes + self.spill_runs > 0 {
            out.push_str(&format!(
                "memory scratch-peak {}B  spill-runs {}\n",
                self.scratch_bytes, self.spill_runs
            ));
        }
        if self.store_hits + self.store_misses > 0 {
            out.push_str(&format!(
                "store-cache hits {}  misses {}  read {}B  written {}B\n",
                self.store_hits, self.store_misses, self.store_bytes_read, self.store_bytes_written
            ));
        }
        for p in &self.phases {
            out.push_str(&format!("  {:<14} {:>9.3}s\n", p.name, p.seconds));
        }
        if !self.spans.is_empty() {
            out.push_str("trace spans:\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<14} {:>7}x {:>9.3}s\n",
                    s.name, s.count, s.seconds
                ));
            }
        }
        out
    }
}

/// A reproduced table: header plus rows of cells.
///
/// `failures` records rows degraded to [`FAILED_CELL`] with the reason;
/// like [`FigureData`], serialization omits the field when empty so
/// fault-free archives stay byte-identical (hence the manual impls).
#[derive(Clone, Debug)]
pub struct TableData {
    /// Experiment id, e.g. "tab-signature".
    pub id: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
    /// Components whose cells are degraded, with reasons (footnoted).
    pub failures: Vec<Degradation>,
}

impl Serialize for TableData {
    fn to_content(&self) -> Content {
        let mut fields = vec![
            ("id".to_string(), self.id.to_content()),
            ("header".to_string(), self.header.to_content()),
            ("rows".to_string(), self.rows.to_content()),
        ];
        if !self.failures.is_empty() {
            fields.push(("failures".to_string(), self.failures.to_content()));
        }
        Content::Map(fields)
    }
}

impl Deserialize for TableData {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let field = |k: &str| c.get(k).ok_or_else(|| DeError(format!("missing {k}")));
        Ok(TableData {
            id: String::from_content(field("id")?)?,
            header: Vec::from_content(field("header")?)?,
            rows: Vec::from_content(field("rows")?)?,
            failures: match c.get("failures") {
                Some(f) => Vec::from_content(f)?,
                None => Vec::new(),
            },
        })
    }
}

impl TableData {
    /// A table with no failures recorded.
    pub fn new(id: impl Into<String>, header: Vec<String>, rows: Vec<Vec<String>>) -> TableData {
        TableData {
            id: id.into(),
            header,
            rows,
            failures: Vec::new(),
        }
    }

    /// Append a degraded row for a failed component: its label followed
    /// by [`FAILED_CELL`] in every remaining column, with the reason
    /// recorded for the footnote.
    pub fn push_failed_row(&mut self, label: impl Into<String>, reason: impl Into<String>) {
        let label = label.into();
        let cols = self.header.len().max(2);
        let mut row = vec![label.clone()];
        row.resize(cols, FAILED_CELL.to_string());
        self.rows.push(row);
        self.failures.push(Degradation {
            label,
            reason: reason.into(),
        });
    }

    /// Render as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(c.len());
                line.push_str(&format!("{:w$}  ", c, w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for d in &self.failures {
            out.push_str(&format!("* {}: {FAILED_CELL} — {}\n", d.label, d.reason));
        }
        out
    }
}

/// Render a figure as aligned text columns (one block per series) —
/// gnuplot-ready and diffable.
pub fn render_figure(fig: &FigureData) -> String {
    let mut out = format!("# {}\n# x: {}   y: {}\n", fig.id, fig.x_label, fig.y_label);
    for s in &fig.series {
        out.push_str(&format!("\n# series: {}\n", s.label));
        for (x, y) in s.x.iter().zip(&s.y) {
            out.push_str(&format!("{x:.6e} {y:.6e}\n"));
        }
    }
    for d in &fig.failures {
        out.push_str(&format!(
            "\n# series: {} — {FAILED_CELL}: {}\n",
            d.label, d.reason
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_drops_nan() {
        let s = Series::new("t", &[1.0, 2.0, 3.0], &[1.0, f64::NAN, 3.0]);
        assert_eq!(s.x, vec![1.0, 3.0]);
        assert_eq!(s.y, vec![1.0, 3.0]);
    }

    #[test]
    fn table_renders_aligned() {
        let t = TableData::new(
            "t",
            vec!["Topology".into(), "Sig".into()],
            vec![
                vec!["Mesh".into(), "LHH".into()],
                vec!["PLRG".into(), "HHL".into()],
            ],
        );
        let r = t.render();
        assert!(r.contains("Topology"));
        assert!(r.lines().count() >= 4);
        // Columns aligned: both data lines have "LHH"/"HHL" at the same
        // offset.
        let lines: Vec<&str> = r.lines().collect();
        let off1 = lines[2].find("LHH").unwrap();
        let off2 = lines[3].find("HHL").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    fn figure_text_roundtrip() {
        let f = FigureData::new(
            "fig",
            "h",
            "E",
            vec![Series::new("a", &[0.0, 1.0], &[0.5, 1.0])],
        );
        let txt = render_figure(&f);
        assert!(txt.contains("series: a"));
        assert!(txt.contains("5.000000e-1") || txt.contains("5e-1"));
        // JSON serializable.
        let j = serde_json::to_string(&f).unwrap();
        let back: FigureData = serde_json::from_str(&j).unwrap();
        assert_eq!(back.series[0].y, f.series[0].y);
    }

    #[test]
    #[should_panic]
    fn series_length_mismatch_panics() {
        let _ = Series::new("x", &[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn failures_field_omitted_when_empty() {
        // The degradation field must not change fault-free archives.
        let t = TableData::new("t", vec!["A".into()], vec![vec!["x".into()]]);
        assert!(!serde_json::to_string(&t).unwrap().contains("failures"));
        let f = FigureData::new("f", "x", "y", Vec::new());
        assert!(!serde_json::to_string(&f).unwrap().contains("failures"));
    }

    #[test]
    fn degraded_table_round_trips_and_footnotes() {
        let mut t = TableData::new(
            "t",
            vec!["Topology".into(), "Nodes".into()],
            vec![vec!["Mesh".into(), "900".into()]],
        );
        t.push_failed_row("Tiers", "injected fault at build (Tiers)");
        assert_eq!(t.rows.len(), 2);
        assert_eq!(
            t.rows[1],
            vec!["Tiers".to_string(), FAILED_CELL.to_string()]
        );
        let rendered = t.render();
        assert!(rendered.contains(FAILED_CELL));
        assert!(rendered.contains("* Tiers"));
        assert!(rendered.contains("injected fault"));
        let j = serde_json::to_string(&t).unwrap();
        assert!(j.contains("failures"));
        let back: TableData = serde_json::from_str(&j).unwrap();
        assert_eq!(back.failures, t.failures);
        assert_eq!(back.rows, t.rows);
    }

    #[test]
    fn timing_report_omits_spans_when_empty() {
        // Untraced BENCH_*.json files must stay byte-identical with
        // archives written before the trace layer existed.
        let mut r = TimingReport {
            bfs_runs: 3,
            ..Default::default()
        };
        let j = serde_json::to_string(&r).unwrap();
        assert!(!j.contains("spans"));
        let back: TimingReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back.bfs_runs, 3);
        assert!(back.spans.is_empty());

        r.spans.push(SpanRollup {
            name: "unit".into(),
            count: 4,
            seconds: 0.25,
        });
        let j = serde_json::to_string(&r).unwrap();
        assert!(j.contains("spans"));
        let back: TimingReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back.spans, r.spans);
        assert!(r.render().contains("trace spans"));
    }

    #[test]
    fn timing_report_omits_bitset_counters_when_zero() {
        // Scalar-path reports (and archives predating the bitset
        // kernels) carry no words_scanned/frontier_passes keys.
        let r = TimingReport {
            bfs_runs: 2,
            ..Default::default()
        };
        let j = serde_json::to_string(&r).unwrap();
        assert!(!j.contains("words_scanned"));
        assert!(!j.contains("frontier_passes"));
        let back: TimingReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back.words_scanned, 0);
        assert_eq!(back.frontier_passes, 0);
        assert!(!r.render().contains("bitset"));

        let b = TimingReport {
            words_scanned: 17,
            frontier_passes: 5,
            ..Default::default()
        };
        let j = serde_json::to_string(&b).unwrap();
        assert!(j.contains("words_scanned"));
        let back: TimingReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back.words_scanned, 17);
        assert_eq!(back.frontier_passes, 5);
        let mut merged = r.clone();
        merged.merge(&b);
        assert_eq!(merged.words_scanned, 17);
        assert_eq!(merged.frontier_passes, 5);
        assert!(b.render().contains("bitset words-scanned 17"));
    }

    #[test]
    fn timing_report_omits_memory_counters_when_zero() {
        // Runs without a mem budget (and archives predating the
        // compressed hierarchy scratch) carry neither key.
        let r = TimingReport {
            bfs_runs: 1,
            ..Default::default()
        };
        let j = serde_json::to_string(&r).unwrap();
        assert!(!j.contains("scratch_bytes"));
        assert!(!j.contains("spill_runs"));
        let back: TimingReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back.scratch_bytes, 0);
        assert_eq!(back.spill_runs, 0);

        let b = TimingReport {
            scratch_bytes: 4096,
            spill_runs: 3,
            ..Default::default()
        };
        let j = serde_json::to_string(&b).unwrap();
        let back: TimingReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back.scratch_bytes, 4096);
        assert_eq!(back.spill_runs, 3);
        // scratch is a high-water mark: merge takes the max, not the sum.
        let mut merged = b.clone();
        merged.merge(&TimingReport {
            scratch_bytes: 1024,
            spill_runs: 2,
            ..Default::default()
        });
        assert_eq!(merged.scratch_bytes, 4096);
        assert_eq!(merged.spill_runs, 5);
        assert!(b.render().contains("memory scratch-peak 4096B"));
    }

    #[test]
    fn timing_report_merges_spans_by_name() {
        let mut a = TimingReport::default();
        a.spans.push(SpanRollup {
            name: "balls".into(),
            count: 2,
            seconds: 1.0,
        });
        let mut b = TimingReport::default();
        b.spans.push(SpanRollup {
            name: "balls".into(),
            count: 3,
            seconds: 0.5,
        });
        b.spans.push(SpanRollup {
            name: "center".into(),
            count: 1,
            seconds: 0.1,
        });
        a.merge(&b);
        assert_eq!(a.spans.len(), 2);
        let balls = a.spans.iter().find(|s| s.name == "balls").unwrap();
        assert_eq!(balls.count, 5);
        assert!((balls.seconds - 1.5).abs() < 1e-12);
    }

    #[test]
    fn span_rollups_fold_from_trace_units() {
        let mut r = TimingReport::default();
        r.add_span_rollups(&[topogen_par::SpanRollup {
            name: "store-put",
            count: 7,
            nanos: 2_500_000_000,
        }]);
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].count, 7);
        assert!((r.spans[0].seconds - 2.5).abs() < 1e-12);
    }

    #[test]
    fn degraded_figure_round_trips_and_footnotes() {
        let mut f = FigureData::new("f", "x", "y", vec![Series::new("ok", &[1.0], &[2.0])]);
        f.note_failure("PLRG", "boom");
        let txt = render_figure(&f);
        assert!(txt.contains("PLRG") && txt.contains(FAILED_CELL) && txt.contains("boom"));
        let j = serde_json::to_string(&f).unwrap();
        let back: FigureData = serde_json::from_str(&j).unwrap();
        assert_eq!(back.failures, f.failures);
        assert_eq!(back.series.len(), 1);
    }
}
