//! Hierarchy-analysis glue (§5): link values, classification, and the
//! degree correlation for a built topology, with and without policy.

use crate::report::TimingReport;
use crate::zoo::BuiltTopology;
use serde::{Deserialize, Serialize};
use topogen_graph::prune::core as core_prune;
use topogen_hierarchy::classify::HierarchyClass;
use topogen_hierarchy::correlation::link_value_degree_correlation;
use topogen_hierarchy::linkvalue::{link_value_stats, link_values_threads, PathMode};
use topogen_par::Instrument;

/// Everything §5 reports about one topology.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HierarchyReport {
    /// Topology name.
    pub name: String,
    /// Whether policy-constrained paths were used.
    pub policy: bool,
    /// Normalized link values, sorted descending.
    pub values: Vec<f64>,
    /// Max normalized value.
    pub max: f64,
    /// Median normalized value.
    pub median: f64,
    /// strict / moderate / loose.
    pub class: String,
    /// Pearson correlation with min endpoint degree (Figure 5).
    pub degree_correlation: Option<f64>,
}

/// Options for the hierarchy analysis.
#[derive(Clone, Copy, Debug)]
pub struct HierOptions {
    /// Use valley-free paths (requires annotations).
    pub policy: bool,
    /// Reduce to the degree>1 core first — the paper's treatment of the
    /// RL graph (footnote 29), applied when graphs exceed
    /// `core_threshold` nodes.
    pub core_threshold: usize,
}

impl Default for HierOptions {
    fn default() -> Self {
        HierOptions {
            policy: false,
            core_threshold: 3_000,
        }
    }
}

/// Run the §5 analysis.
///
/// # Panics
/// Panics if `opts.policy` is set but the topology has no annotations
/// (policy analysis is only defined for the annotated AS graph).
pub fn hierarchy_report(t: &BuiltTopology, opts: &HierOptions) -> HierarchyReport {
    hierarchy_report_timed(t, opts).0
}

/// [`hierarchy_report`] plus the link-value engine's instrumentation
/// (per-stage wall times, DAG states visited, pairs accumulated, arena
/// bytes) — what `repro tab-hierarchy --timings` aggregates and archives
/// as `BENCH_tab-hierarchy.json`.
pub fn hierarchy_report_timed(
    t: &BuiltTopology,
    opts: &HierOptions,
) -> (HierarchyReport, TimingReport) {
    hierarchy_report_timed_in(&crate::ctx::RunCtx::ambient(), t, opts)
}

/// [`hierarchy_report_timed`] against an explicit context: link values
/// are served from and persisted to `ctx.store`, the traversal runs
/// under the context's deadline and trace sink, and counters report
/// into `ctx.instrument` when one is attached.
///
/// # Panics
/// Panics if `opts.policy` is set but the topology has no annotations.
pub fn hierarchy_report_timed_in(
    ctx: &crate::ctx::RunCtx,
    t: &BuiltTopology,
    opts: &HierOptions,
) -> (HierarchyReport, TimingReport) {
    // Core-prune very large graphs, as the paper did for RL. The pruned
    // graph loses the annotation alignment, so policy analysis skips the
    // pruning (the annotated AS graphs are small enough anyway).
    let (work, pruned): (std::borrow::Cow<'_, topogen_graph::Graph>, bool) =
        if !opts.policy && t.graph.node_count() > opts.core_threshold {
            (std::borrow::Cow::Owned(core_prune(&t.graph).0), true)
        } else {
            (std::borrow::Cow::Borrowed(&t.graph), false)
        };
    let mode = if opts.policy {
        PathMode::Policy(
            t.annotations
                .as_ref()
                .expect("policy hierarchy needs annotations"),
        )
    } else {
        PathMode::Shortest
    };
    let ins = ctx
        .instrument
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(Instrument::new()));
    let mut values = cached_link_values(ctx, &work, &mode, t, &ins);
    let degree_correlation = link_value_degree_correlation(&work, &values);
    let class = topogen_hierarchy::classify_hierarchy(&values);
    let stats = link_value_stats(&values);
    values.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let report = HierarchyReport {
        name: if pruned {
            format!("{} (core)", t.name)
        } else {
            t.name.clone()
        },
        policy: opts.policy,
        values,
        max: stats.max,
        median: stats.median,
        class: class.to_string(),
        degree_correlation,
    };
    (report, TimingReport::from(&ins.report()))
}

/// The raw link-value vector (edge order, pre-sort), served from the
/// context's artifact store when a matching entry exists. Everything
/// the report derives from it (correlation, class, stats, sorted
/// values) is a pure function of the vector + work graph, so warm
/// results are bit-identical to cold ones. The (potentially long)
/// traversal runs under the context's engine state.
fn cached_link_values(
    ctx: &crate::ctx::RunCtx,
    work: &topogen_graph::Graph,
    mode: &PathMode<'_>,
    t: &BuiltTopology,
    ins: &Instrument,
) -> Vec<f64> {
    let Some(store) = ctx.store.clone() else {
        return ctx.scope(|| link_values_threads(work, mode, None, Some(ins)));
    };
    let mut key = topogen_store::key::KeyBuilder::new("link-values")
        .hash("graph", crate::cache::graph_hash(work));
    key = match mode {
        PathMode::Shortest => key.field("mode", "shortest"),
        PathMode::Policy(ann) => key.field("mode", "policy").hash(
            "ann",
            crate::cache::annotations_hash(ann, t.graph.edge_count()),
        ),
    };
    let key = key.finish();
    if let Some(bytes) = store.get(&key) {
        if let Some(values) = crate::cache::decode_link_values(&bytes, work.edge_count()) {
            ins.add_store_traffic(1, 0, bytes.len() as u64, 0);
            return values;
        }
    }
    let values = ctx.scope(|| link_values_threads(work, mode, None, Some(ins)));
    let bytes = crate::cache::encode_link_values(&values);
    store.put(&key, &bytes);
    ins.add_store_traffic(0, 1, 0, bytes.len() as u64);
    values
}

/// Re-expose the class enum for downstream matching.
pub fn class_of(report: &HierarchyReport) -> HierarchyClass {
    match report.class.as_str() {
        "strict" => HierarchyClass::Strict,
        "loose" => HierarchyClass::Loose,
        _ => HierarchyClass::Moderate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build, Scale, TopologySpec};

    #[test]
    fn tree_reports_strict() {
        let t = build(&TopologySpec::Tree { k: 3, depth: 4 }, Scale::Small, 1);
        let r = hierarchy_report(&t, &HierOptions::default());
        assert_eq!(r.class, "strict");
        assert!(r.max > 0.25);
        assert!(!r.policy);
        assert_eq!(class_of(&r), HierarchyClass::Strict);
    }

    #[test]
    fn timed_report_populates_hierarchy_counters() {
        let t = build(&TopologySpec::Mesh { side: 6 }, Scale::Small, 1);
        let (r, timings) = hierarchy_report_timed(&t, &HierOptions::default());
        assert_eq!(r.values.len(), t.graph.edge_count());
        // 36 nodes, all reachable: C(36, 2) pairs accumulated.
        assert_eq!(timings.pairs_accumulated, 36 * 35 / 2);
        assert!(timings.dag_states > 0);
        assert!(timings.arena_bytes > 0);
        let names: Vec<&str> = timings.phases.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"hier-traversal"), "phases: {names:?}");
        assert!(names.contains(&"hier-cover"), "phases: {names:?}");
    }

    #[test]
    fn values_sorted_descending() {
        let t = build(&TopologySpec::Mesh { side: 8 }, Scale::Small, 1);
        let r = hierarchy_report(&t, &HierOptions::default());
        assert!(r.values.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(r.values.len(), t.graph.edge_count());
    }

    #[test]
    fn core_pruning_applies_to_big_graphs() {
        let t = build(&TopologySpec::Tree { k: 3, depth: 6 }, Scale::Small, 1);
        let opts = HierOptions {
            policy: false,
            core_threshold: 100,
        };
        let r = hierarchy_report(&t, &opts);
        // A tree's core is empty → no link values.
        assert!(r.name.contains("core"));
        assert!(r.values.is_empty());
    }

    #[test]
    #[should_panic]
    fn policy_without_annotations_panics() {
        let t = build(&TopologySpec::Mesh { side: 5 }, Scale::Small, 1);
        let _ = hierarchy_report(
            &t,
            &HierOptions {
                policy: true,
                core_threshold: 3000,
            },
        );
    }
}
