//! The topology zoo of Figure 1, plus the degree-based variants of
//! Appendix D and the synthetic measured graphs.
//!
//! Every spec builds deterministically from a seed, returns its largest
//! connected component (the paper's analysis graph), and — for the
//! synthetic AS/RL graphs — carries relationship annotations so the
//! policy-routing variants of every experiment can run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_generators::ba::{AlbertBarabasiParams, BaParams};
use topogen_generators::brite::BriteParams;
use topogen_generators::canonical;
use topogen_generators::connectivity::rewire_as_plrg;
use topogen_generators::glp::GlpParams;
use topogen_generators::inet::InetParams;
use topogen_generators::plrg::PlrgParams;
use topogen_generators::tiers::TiersParams;
use topogen_generators::transit_stub::TransitStubParams;
use topogen_generators::waxman::WaxmanParams;
use topogen_generators::Generate;
use topogen_graph::components::largest_component;
use topogen_graph::{Graph, NodeId};
use topogen_measured::as_graph::{internet_as, InternetAsParams};
use topogen_measured::rl_graph::{expand_to_routers, RouterExpansionParams};
use topogen_policy::rel::AsAnnotations;

/// Run scale: CI-sized graphs versus the paper's Figure 1 sizes, plus
/// the large sampled-center tiers the bitset kernels unlock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Hundreds-to-a-few-thousand nodes; minutes-of-CPU experiments.
    Small,
    /// The paper's sizes (PLRG ≈ 9000, Tiers 5000, AS ≈ 11000, RL huge);
    /// expect long runtimes on the heavier metrics.
    Paper,
    /// Paper-RL-sized (~170k nodes where the generator permits): the
    /// paper's router-level population, tractable via sampled centers +
    /// the batched bitset BFS kernels. Waxman stays at 20k (its pair
    /// loop is O(n²)); TS/Tiers keep their paper structural sizes.
    Large,
    /// Million-node stretch tier for the canonical/degree-sequence
    /// generators; measured graphs stay at paper scale.
    Xl,
}

/// A buildable topology from the paper.
#[derive(Clone, Debug, PartialEq)]
pub enum TopologySpec {
    /// Canonical k-ary tree.
    Tree {
        /// Branching factor.
        k: usize,
        /// Depth.
        depth: usize,
    },
    /// Canonical rectangular grid.
    Mesh {
        /// Side length (rows = cols).
        side: usize,
    },
    /// Canonical linear chain.
    Linear {
        /// Node count.
        n: usize,
    },
    /// Complete graph.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Erdős–Rényi random graph G(n, p).
    Random {
        /// Node count before largest-component extraction.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Waxman random graph.
    Waxman(WaxmanParams),
    /// GT-ITM Transit-Stub.
    TransitStub(TransitStubParams),
    /// Tiers.
    Tiers(TiersParams),
    /// Power-law random graph.
    Plrg(PlrgParams),
    /// Barabási–Albert.
    Ba(BaParams),
    /// Albert–Barabási with link addition/rewiring.
    AlbertBarabasi(AlbertBarabasiParams),
    /// BRITE-like.
    Brite(BriteParams),
    /// Bu–Towsley GLP (the paper's "BT").
    Glp(GlpParams),
    /// Inet-like.
    Inet(InetParams),
    /// GT-ITM N-level hierarchy (Zegura et al.'s original structural
    /// model).
    NLevel(topogen_generators::nlevel::NLevelParams),
    /// "Modified" variant (Figure 13): build the inner spec, then
    /// reconnect its degree sequence with the PLRG method.
    PlrgRewired(Box<TopologySpec>),
    /// Synthetic measured AS graph (with annotations).
    MeasuredAs,
    /// Synthetic measured router-level graph.
    MeasuredRl,
}

impl TopologySpec {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            TopologySpec::Tree { .. } => "Tree".into(),
            TopologySpec::Mesh { .. } => "Mesh".into(),
            TopologySpec::Linear { .. } => "Linear".into(),
            TopologySpec::Complete { .. } => "Complete".into(),
            TopologySpec::Random { .. } => "Random".into(),
            TopologySpec::Waxman(_) => "Waxman".into(),
            TopologySpec::TransitStub(_) => "TS".into(),
            TopologySpec::Tiers(_) => "Tiers".into(),
            TopologySpec::Plrg(_) => "PLRG".into(),
            TopologySpec::Ba(_) => "B-A".into(),
            TopologySpec::AlbertBarabasi(_) => "AB".into(),
            TopologySpec::Brite(_) => "Brite".into(),
            TopologySpec::Glp(_) => "BT".into(),
            TopologySpec::Inet(_) => "Inet".into(),
            TopologySpec::NLevel(_) => "N-Level".into(),
            TopologySpec::PlrgRewired(inner) => format!("Modified {}", inner.name()),
            TopologySpec::MeasuredAs => "AS".into(),
            TopologySpec::MeasuredRl => "RL".into(),
        }
    }

    /// The paper's Figure 1 zoo at the requested scale: Tree, Mesh,
    /// Random, Waxman, TS, Tiers, PLRG, AS, RL.
    pub fn figure1_zoo(scale: Scale) -> Vec<TopologySpec> {
        match scale {
            Scale::Paper => vec![
                TopologySpec::Tree { k: 3, depth: 6 },
                TopologySpec::Mesh { side: 30 },
                TopologySpec::Random { n: 5018, p: 0.0008 },
                TopologySpec::Waxman(WaxmanParams::paper_default()),
                TopologySpec::TransitStub(TransitStubParams::paper_default()),
                TopologySpec::Tiers(TiersParams::paper_default()),
                TopologySpec::Plrg(PlrgParams::paper_default()),
                TopologySpec::MeasuredAs,
                TopologySpec::MeasuredRl,
            ],
            Scale::Small => vec![
                TopologySpec::Tree { k: 3, depth: 6 },
                TopologySpec::Mesh { side: 30 },
                TopologySpec::Random { n: 1200, p: 0.0035 },
                TopologySpec::Waxman(WaxmanParams {
                    n: 1200,
                    alpha: 0.02,
                    beta: 0.3,
                }),
                TopologySpec::TransitStub(TransitStubParams::paper_default()),
                TopologySpec::Tiers(TiersParams {
                    mans_per_wan: 10,
                    lans_per_man: 8,
                    wan_nodes: 350,
                    man_nodes: 20,
                    lan_nodes: 5,
                    ..TiersParams::paper_default()
                }),
                TopologySpec::Plrg(PlrgParams {
                    n: 1300,
                    alpha: 2.246,
                    max_degree: None,
                }),
                TopologySpec::MeasuredAs,
                TopologySpec::MeasuredRl,
            ],
            // Paper-RL-sized canonical/degree-sequence graphs (~170k,
            // matching the measured router-level population at
            // `InternetAsParams::paper_scale`). Waxman's O(n²) pair
            // loop caps it at 20k; TS/Tiers keep the paper's own
            // structural sizes (their hierarchies don't scale by a
            // single knob).
            Scale::Large => vec![
                TopologySpec::Tree { k: 3, depth: 11 },
                TopologySpec::Mesh { side: 414 },
                TopologySpec::Random {
                    n: 170_000,
                    p: 2.5e-5,
                },
                TopologySpec::Waxman(WaxmanParams {
                    n: 20_000,
                    alpha: 0.001_25,
                    beta: 0.3,
                }),
                TopologySpec::TransitStub(TransitStubParams::paper_default()),
                TopologySpec::Tiers(TiersParams::paper_default()),
                TopologySpec::Plrg(PlrgParams {
                    n: 170_000,
                    alpha: 2.246,
                    max_degree: None,
                }),
                TopologySpec::MeasuredAs,
                TopologySpec::MeasuredRl,
            ],
            // Million-node stretch tier where the generator is
            // near-linear; Waxman/TS/Tiers/measured stay at their Large
            // sizes.
            Scale::Xl => vec![
                TopologySpec::Tree { k: 3, depth: 12 },
                TopologySpec::Mesh { side: 1000 },
                TopologySpec::Random {
                    n: 1_000_000,
                    p: 4.2e-6,
                },
                TopologySpec::Waxman(WaxmanParams {
                    n: 20_000,
                    alpha: 0.001_25,
                    beta: 0.3,
                }),
                TopologySpec::TransitStub(TransitStubParams::paper_default()),
                TopologySpec::Tiers(TiersParams::paper_default()),
                TopologySpec::Plrg(PlrgParams {
                    n: 1_000_000,
                    alpha: 2.246,
                    max_degree: None,
                }),
                TopologySpec::MeasuredAs,
                TopologySpec::MeasuredRl,
            ],
        }
    }

    /// The degree-based generator panel of Figure 2(j–l)/Appendix D.
    pub fn degree_based_zoo(scale: Scale) -> Vec<TopologySpec> {
        let n = match scale {
            Scale::Small => 1300,
            Scale::Paper => 9000,
            // Conservative at the big tiers: some degree-based
            // generators (AB's attachment scan, Inet's fitting loops)
            // are quadratic-ish, so the panel grows less aggressively
            // than the canonical zoo.
            Scale::Large => 50_000,
            Scale::Xl => 170_000,
        };
        vec![
            TopologySpec::Ba(BaParams { n, m: 2 }),
            TopologySpec::Brite(BriteParams::paper_default(n)),
            TopologySpec::Glp(GlpParams::paper_as_fit(n)),
            TopologySpec::Inet(InetParams::paper_default(n)),
            TopologySpec::Plrg(PlrgParams {
                n,
                alpha: 2.246,
                max_degree: None,
            }),
        ]
    }
}

/// The AS-level context a router-level topology was expanded from —
/// everything the Appendix E router policy construction needs.
#[derive(Clone, Debug)]
pub struct AsOverlayData {
    /// The AS graph.
    pub as_graph: Graph,
    /// Its relationship annotations.
    pub annotations: AsAnnotations,
}

/// A built topology: the largest connected component plus metadata.
#[derive(Clone, Debug)]
pub struct BuiltTopology {
    /// Display name.
    pub name: String,
    /// The analysis graph (largest connected component).
    pub graph: Graph,
    /// Relationship annotations, present for the synthetic AS graph
    /// (policy experiments run only when this is set).
    pub annotations: Option<AsAnnotations>,
    /// For MeasuredRl: owning AS of each router (in LCC ids).
    pub router_as: Option<Vec<NodeId>>,
    /// For MeasuredRl: the AS graph + annotations it was expanded from
    /// (enables the RL(Policy) experiments).
    pub as_overlay: Option<AsOverlayData>,
    /// The spec that produced it.
    pub spec: TopologySpec,
}

/// Build a topology deterministically from `seed`, under the ambient
/// compatibility context (process-global store, thread deadline, active
/// trace sink) — the batch CLI's entry point. Equivalent to
/// `build_in(&RunCtx::ambient(), …)`; concurrent callers construct a
/// [`RunCtx`](crate::ctx::RunCtx) instead.
pub fn build(spec: &TopologySpec, scale: Scale, seed: u64) -> BuiltTopology {
    build_in(&crate::ctx::RunCtx::ambient(), spec, scale, seed)
}

/// [`build`] against an explicit context.
///
/// When `ctx.store` is set (`repro --cache`, or the serve daemon's
/// shared store), the build is served from disk when a matching entry
/// exists and persisted after computing otherwise — the codec
/// round-trip is exact, so cached and computed results are
/// indistinguishable downstream. The CLI never supplies a store while
/// `TOPOGEN_FAULTS` is armed, so fault-perturbed builds are never
/// cached. The context's deadline and trace sink are installed around
/// the compute path.
pub fn build_in(
    ctx: &crate::ctx::RunCtx,
    spec: &TopologySpec,
    scale: Scale,
    seed: u64,
) -> BuiltTopology {
    let Some(store) = ctx.store.clone() else {
        return ctx.scope(|| build_uncached(ctx, spec, scale, seed));
    };
    let key = crate::cache::topology_key(spec, scale, seed);
    if let Some(bytes) = store.get(&key) {
        if let Some(t) = crate::cache::decode_topology(&bytes, spec) {
            return t;
        }
    }
    let t = ctx.scope(|| build_uncached(ctx, spec, scale, seed));
    store.put(&key, &crate::cache::encode_topology(&t));
    t
}

fn build_uncached(
    ctx: &crate::ctx::RunCtx,
    spec: &TopologySpec,
    scale: Scale,
    seed: u64,
) -> BuiltTopology {
    let mut rng = StdRng::seed_from_u64(seed);
    let name = spec.name();
    // Fault site for robustness tests; a no-op unless TOPOGEN_FAULTS
    // arms a `build` entry (optionally scoped to this topology's name).
    topogen_par::faults::inject("build", &name);
    let (graph, annotations, router_as) = match spec {
        // The canonical and degree-sequence generators all emit through
        // `EdgeSink`s: under a memory budget (`repro --mem-budget`) they
        // stream into a bounded spill-to-disk builder instead of an
        // unbounded in-memory edge vector. One generic body serves both
        // sinks, so the budgeted graph is identical bit-for-bit.
        TopologySpec::Tree { k, depth } => (
            match ctx.mem_budget {
                Some(b) => build_streamed(b, |s| canonical::kary_tree_into(*k, *depth, s)),
                None => canonical::kary_tree(*k, *depth),
            },
            None,
            None,
        ),
        TopologySpec::Mesh { side } => (
            match ctx.mem_budget {
                Some(b) => build_streamed(b, |s| canonical::mesh_into(*side, *side, s)),
                None => canonical::mesh(*side, *side),
            },
            None,
            None,
        ),
        TopologySpec::Linear { n } => (
            match ctx.mem_budget {
                Some(b) => build_streamed(b, |s| canonical::linear_into(*n, s)),
                None => canonical::linear(*n),
            },
            None,
            None,
        ),
        TopologySpec::Complete { n } => (
            match ctx.mem_budget {
                Some(b) => build_streamed(b, |s| canonical::complete_into(*n, s)),
                None => canonical::complete(*n),
            },
            None,
            None,
        ),
        TopologySpec::Random { n, p } => (
            largest_component(&match ctx.mem_budget {
                Some(b) => build_streamed(b, |s| canonical::random_gnp_into(*n, *p, &mut rng, s)),
                None => canonical::random_gnp(*n, *p, &mut rng),
            })
            .0,
            None,
            None,
        ),
        // Every parameterized generator goes through the uniform
        // `Generate` entry point, whose contract is exactly this zoo's:
        // return the analysis graph (largest component where needed).
        TopologySpec::Waxman(p) => (p.generate(&mut rng), None, None),
        TopologySpec::TransitStub(p) => (p.generate(&mut rng), None, None),
        TopologySpec::Tiers(p) => (p.generate(&mut rng), None, None),
        TopologySpec::Plrg(p) => (
            match ctx.mem_budget {
                Some(b) => {
                    largest_component(&build_streamed(b, |s| {
                        topogen_generators::plrg::plrg_into(p, &mut rng, s)
                    }))
                    .0
                }
                None => p.generate(&mut rng),
            },
            None,
            None,
        ),
        TopologySpec::Ba(p) => (p.generate(&mut rng), None, None),
        TopologySpec::AlbertBarabasi(p) => (p.generate(&mut rng), None, None),
        TopologySpec::Brite(p) => (p.generate(&mut rng), None, None),
        TopologySpec::Glp(p) => (p.generate(&mut rng), None, None),
        TopologySpec::Inet(p) => (p.generate(&mut rng), None, None),
        TopologySpec::NLevel(p) => (p.generate(&mut rng), None, None),
        TopologySpec::PlrgRewired(inner) => {
            // Recurse with the same context so the base build caches
            // against the explicit store, not whatever is ambient.
            let base = build_in(ctx, inner, scale, seed);
            let rewired = rewire_as_plrg(&base.graph, &mut rng);
            (largest_component(&rewired).0, None, None)
        }
        TopologySpec::MeasuredAs => {
            let params = match scale {
                Scale::Small => InternetAsParams::default_scaled(),
                // The measured population has one "full" size — the
                // paper's — which Large/Xl share (RL ≈ 170k routers).
                Scale::Paper | Scale::Large | Scale::Xl => InternetAsParams::paper_scale(),
            };
            let m = internet_as(&params, &mut rng);
            // The generator guarantees connectivity, so annotations stay
            // aligned with the graph's edge order.
            (m.graph, Some(m.annotations), None)
        }
        TopologySpec::MeasuredRl => {
            let params = match scale {
                Scale::Small => InternetAsParams::default_scaled(),
                Scale::Paper | Scale::Large | Scale::Xl => InternetAsParams::paper_scale(),
            };
            let m = internet_as(&params, &mut rng);
            let rl = expand_to_routers(&m, &RouterExpansionParams::default(), &mut rng);
            return BuiltTopology {
                name,
                graph: rl.graph,
                annotations: None,
                router_as: Some(rl.router_as),
                as_overlay: Some(AsOverlayData {
                    as_graph: m.graph,
                    annotations: m.annotations,
                }),
                spec: spec.clone(),
            };
        }
    };
    BuiltTopology {
        name,
        graph,
        annotations,
        router_as,
        as_overlay: None,
        spec: spec.clone(),
    }
}

/// Build a graph through the memory-budgeted streaming CSR path: edges
/// emit into a [`topogen_graph::stream::StreamingBuilder`] whose fill
/// buffer is bounded by `budget` bytes (overflow spills sorted runs
/// under `out/`, merged k-way at build time). The peak buffer bytes and
/// spill-run count are published to the process-wide instrument
/// high-water marks, which the bench runner drains into the ledger —
/// the same plumbing the metric arenas use.
fn build_streamed<F>(budget: u64, emit: F) -> Graph
where
    F: FnOnce(&mut topogen_graph::stream::StreamingBuilder),
{
    let dir = std::path::PathBuf::from("out");
    let _ = std::fs::create_dir_all(&dir);
    let mut b = topogen_graph::stream::StreamingBuilder::new(0, Some(budget), &dir);
    emit(&mut b);
    let (g, stats) = b.build();
    topogen_par::record_arena_highwater(stats.peak_bytes);
    topogen_par::record_spill_runs(stats.spill_runs);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_graph::components::is_connected;

    #[test]
    fn figure1_zoo_builds_connected() {
        for spec in TopologySpec::figure1_zoo(Scale::Small) {
            if spec == TopologySpec::MeasuredRl {
                continue; // exercised separately (slow)
            }
            let t = build(&spec, Scale::Small, 7);
            assert!(
                is_connected(&t.graph),
                "{} not connected ({} nodes)",
                t.name,
                t.graph.node_count()
            );
            assert!(t.graph.node_count() >= 100, "{} too small", t.name);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(
            TopologySpec::Plrg(PlrgParams::paper_default()).name(),
            "PLRG"
        );
        assert_eq!(TopologySpec::MeasuredAs.name(), "AS");
        assert_eq!(
            TopologySpec::PlrgRewired(Box::new(TopologySpec::Ba(BaParams { n: 10, m: 1 }))).name(),
            "Modified B-A"
        );
    }

    #[test]
    fn measured_as_has_annotations() {
        let t = build(&TopologySpec::MeasuredAs, Scale::Small, 1);
        assert!(t.annotations.is_some());
        let ann = t.annotations.as_ref().unwrap();
        // Alignment invariant: one relationship per edge.
        assert_eq!(
            ann.counts().0 + ann.counts().1 + ann.counts().2,
            t.graph.edge_count()
        );
    }

    #[test]
    fn measured_rl_has_router_map() {
        let t = build(&TopologySpec::MeasuredRl, Scale::Small, 1);
        assert!(t.router_as.is_some());
        assert_eq!(t.router_as.as_ref().unwrap().len(), t.graph.node_count());
        assert!(is_connected(&t.graph));
    }

    #[test]
    fn build_is_deterministic() {
        let s = TopologySpec::Plrg(PlrgParams {
            n: 500,
            alpha: 2.3,
            max_degree: None,
        });
        let a = build(&s, Scale::Small, 9);
        let b = build(&s, Scale::Small, 9);
        assert_eq!(a.graph.edges(), b.graph.edges());
    }

    #[test]
    fn rewired_variant_builds() {
        let s = TopologySpec::PlrgRewired(Box::new(TopologySpec::Ba(BaParams { n: 300, m: 2 })));
        let t = build(&s, Scale::Small, 3);
        assert!(t.graph.node_count() > 200);
    }

    #[test]
    fn budgeted_builds_match_unbudgeted() {
        // A tiny budget forces real spill runs on every streaming-
        // capable spec; the resulting graphs must be bit-identical to
        // the in-memory builds (shared generator bodies, same RNG
        // draws, order-independent sort+dedup).
        let specs = [
            TopologySpec::Tree { k: 3, depth: 6 },
            TopologySpec::Mesh { side: 20 },
            TopologySpec::Linear { n: 400 },
            TopologySpec::Complete { n: 60 },
            TopologySpec::Random { n: 800, p: 0.004 },
            TopologySpec::Plrg(PlrgParams {
                n: 900,
                alpha: 2.246,
                max_degree: None,
            }),
        ];
        let plain = crate::ctx::RunCtx::new();
        let budgeted = crate::ctx::RunCtx::new().with_mem_budget(Some(64 * 1024));
        for spec in specs {
            let a = build_in(&plain, &spec, Scale::Small, 13);
            let b = build_in(&budgeted, &spec, Scale::Small, 13);
            assert_eq!(a.graph.edges(), b.graph.edges(), "{}", spec.name());
            assert_eq!(
                a.graph.node_count(),
                b.graph.node_count(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn degree_based_zoo_heavy_tailed() {
        for spec in TopologySpec::degree_based_zoo(Scale::Small) {
            let t = build(&spec, Scale::Small, 11);
            let ratio = t.graph.max_degree() as f64 / t.graph.average_degree();
            assert!(ratio > 5.0, "{}: max/mean degree ratio {ratio}", t.name);
        }
    }
}
