//! # topogen-core
//!
//! The paper's comparison framework as a reusable library: build any of
//! the topologies it studies, run the metric suite, and reproduce its
//! classifications.
//!
//! * [`zoo`] — the topology zoo of Figure 1 (canonical, structural,
//!   degree-based and synthetic-measured networks) behind a single
//!   [`zoo::TopologySpec`] API with CI-sized and paper-sized scales.
//! * [`suite`] — runs the three basic metrics (expansion, resilience,
//!   distortion), with policy-routing variants for annotated graphs.
//! * [`classify`] — turns metric curves into the paper's Low/High
//!   signatures (§3.2.1's table and §4.4's conclusions).
//! * [`hier`] — link-value analysis glue: distributions,
//!   strict/moderate/loose classes, degree correlation (§5).
//! * [`report`] — text tables and serde-serializable result records for
//!   the experiment harness (EXPERIMENTS.md is generated from these).
//! * [`cache`] — artifact-store glue (content hashes, binary payloads,
//!   cache keys): when the CLI installs an ambient `topogen-store`
//!   handle (`repro --cache`), topology builds, metric suites, and
//!   link-value analyses replay from disk bit-identically.
//!
//! The intended entry point is [`zoo::build`] + [`suite::run_suite`]:
//!
//! ```
//! use topogen_core::zoo::{build, Scale, TopologySpec};
//! use topogen_core::suite::{run_suite, SuiteParams};
//!
//! let t = build(&TopologySpec::Tree { k: 3, depth: 5 }, Scale::Small, 42);
//! let result = run_suite(&t, &SuiteParams::quick());
//! println!("{} signature: {}", t.name, result.signature);
//! assert_eq!(result.signature.to_string(), "HLL");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod classify;
pub mod ctx;
pub mod hier;
pub mod report;
pub mod suite;
pub mod zoo;

pub use classify::{Level, Signature};
pub use ctx::RunCtx;
pub use suite::{run_suite, run_suite_in, SuiteParams, SuiteResult};
pub use zoo::{build, build_in, BuiltTopology, Scale, TopologySpec};
