//! The xl-tier smoke drill (ignored by default — run it with
//! `cargo test --release -- --ignored` or via the CI scale job): a
//! million-node topology built under an explicit memory budget must
//! stream through spill-and-merge without the edge scratch ever
//! exceeding the budget, and a sampled-center expansion sweep over the
//! result must complete and classify.

use topogen_core::suite::{run_suite_in, SuiteParams};
use topogen_core::zoo::{build_in, Scale, TopologySpec};
use topogen_core::RunCtx;

/// 16 MiB: far below the ~24 MiB the xl PLRG's raw edge buffer would
/// need in memory, so the build is forced through spill runs.
const BUDGET: u64 = 16 * 1024 * 1024;

#[test]
#[ignore = "xl tier: ~1M nodes, release-mode minutes; exercised by the CI scale job"]
fn million_node_streamed_build_and_sampled_expansion_under_budget() {
    let _ = topogen_par::take_arena_highwater();
    let _ = topogen_par::take_spill_runs();

    let ctx = RunCtx::new().with_mem_budget(Some(BUDGET));
    let spec = TopologySpec::Plrg(topogen_generators::plrg::PlrgParams {
        n: 1_000_000,
        alpha: 2.246,
        max_degree: None,
    });
    let t = build_in(&ctx, &spec, Scale::Xl, 42);
    assert!(
        t.graph.node_count() >= 500_000,
        "largest component of the xl PLRG should keep most of the 1M nodes, got {}",
        t.graph.node_count()
    );

    let peak = topogen_par::take_arena_highwater();
    let spills = topogen_par::take_spill_runs();
    assert!(spills >= 1, "a {BUDGET}-byte budget must spill at 1M nodes");
    assert!(
        peak > 0 && peak <= BUDGET,
        "edge-scratch peak {peak} exceeded the {BUDGET}-byte budget"
    );

    // Sampled expansion at the xl knobs (8 centers, 64 sources): the
    // full metric suite over the streamed graph must complete and
    // produce finite expansion mass.
    let params = SuiteParams {
        centers: 8,
        expansion_sources: 64,
        max_radius: 32,
        max_ball_nodes: 900,
        batch: Some(4),
        ..SuiteParams::quick()
    };
    let r = run_suite_in(&ctx, &t, &params);
    assert!(
        r.expansion.iter().any(|v| *v > 0.0),
        "sampled expansion curve is empty"
    );
}
