//! The mid-suite kill drill: a real child process running a batched,
//! store-checkpointed suite is SIGKILLed while its batch partials are
//! landing, and a resumed run over the surviving store must reproduce
//! the one-shot curves bit-for-bit — served from the dead child's
//! checkpoints, not recomputed from scratch.
//!
//! The child is this same test binary re-executed with
//! `TOPOGEN_KILL_CHILD` pointing at the shared store directory; the
//! parent polls the store for the first persisted entries and then
//! kills without warning, which is exactly the failure `--resume` must
//! absorb.

use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

use topogen_core::suite::{plain_curves_key, run_suite_in, SuiteParams, SuiteResult};
use topogen_core::zoo::{build, Scale, TopologySpec};
use topogen_core::RunCtx;
use topogen_store::Store;

const CHILD_ENV: &str = "TOPOGEN_KILL_CHILD";

/// The topology and parameters both processes must agree on.
fn drill_setup() -> (TopologySpec, SuiteParams) {
    let mut params = SuiteParams::quick();
    params.seed = 4242;
    // One job per batch: every completed job is a durable checkpoint,
    // so a kill at any point strands a meaningful partial prefix.
    params.batch = Some(1);
    (TopologySpec::Mesh { side: 16 }, params)
}

fn fingerprint(r: &SuiteResult) -> (Vec<u64>, Vec<(u32, u64, u64)>, String) {
    (
        r.expansion.iter().map(|v| v.to_bits()).collect(),
        r.resilience
            .iter()
            .chain(r.distortion.iter())
            .map(|p| (p.radius, p.avg_size.to_bits(), p.value.to_bits()))
            .collect(),
        r.signature.to_string(),
    )
}

/// Count `.tgr` entries under the store root (two-level sharding).
fn entry_count(root: &std::path::Path) -> usize {
    let Ok(shards) = std::fs::read_dir(root) else {
        return 0;
    };
    shards
        .flatten()
        .filter(|s| s.path().is_dir())
        .flat_map(|s| std::fs::read_dir(s.path()).into_iter().flatten().flatten())
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("tgr"))
        .count()
}

#[test]
fn sigkilled_suite_resumes_fingerprint_identical() {
    let (spec, params) = drill_setup();

    // Child mode: run the batched suite against the shared store until
    // the parent kills us (or to completion — the drill still holds).
    if let Ok(dir) = std::env::var(CHILD_ENV) {
        let store = Arc::new(Store::open(dir.as_ref() as &std::path::Path).unwrap());
        let t = build(&spec, Scale::Small, 7);
        let ctx = RunCtx::new().with_store(store);
        let _ = run_suite_in(&ctx, &t, &params);
        return;
    }

    let dir = std::env::temp_dir().join(format!("topogen-kill-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = Command::new(&exe)
        .args([
            "--exact",
            "sigkilled_suite_resumes_fingerprint_identical",
            "--test-threads=1",
            "--nocapture",
        ])
        .env(CHILD_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child drill process");

    // Kill as soon as checkpoints start landing (entry 1 is the cached
    // topology, so wait for at least one batch partial on top of it).
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if entry_count(&dir) >= 2 {
            break;
        }
        if child.try_wait().expect("poll child").is_some() {
            break; // finished before we could kill — drill still valid
        }
        assert!(
            Instant::now() < deadline,
            "child never persisted a checkpoint"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.kill(); // SIGKILL on unix: no destructors, no flush
    let _ = child.wait();

    // The dead child's store must now carry partials. Evict the final
    // curves entry in case the child got that far, so the resumed run
    // is forced through the partial-checkpoint path.
    let t = build(&spec, Scale::Small, 7);
    let store = Arc::new(Store::open(&dir).unwrap());
    store.remove(&plain_curves_key(&t, &params));
    let ctx = RunCtx::new().with_store(store);
    let resumed = run_suite_in(&ctx, &t, &params);

    let one_shot = run_suite_in(
        &RunCtx::new(),
        &t,
        &SuiteParams {
            batch: None,
            ..params
        },
    );

    assert_eq!(
        fingerprint(&resumed),
        fingerprint(&one_shot),
        "resume after SIGKILL must reproduce the one-shot curves bit-for-bit"
    );
    assert!(
        resumed.timings.store_hits >= 1,
        "resume must be served from the killed run's checkpoints"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
