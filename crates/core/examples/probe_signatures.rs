use topogen_core::suite::{run_suite, SuiteParams};
use topogen_core::zoo::{build, Scale, TopologySpec};
use topogen_metrics::expansion::expansion_growth_rate;
use topogen_metrics::resilience::resilience_growth_exponent;

fn main() {
    let mut specs = TopologySpec::figure1_zoo(Scale::Small);
    specs.push(TopologySpec::Complete { n: 150 });
    specs.push(TopologySpec::Linear { n: 600 });
    for spec in specs {
        let t = build(&spec, Scale::Small, 42);
        let r = run_suite(&t, &SuiteParams::quick());
        let er = expansion_growth_rate(&r.expansion);
        let rx = resilience_growth_exponent(&r.resilience);
        let rlast = r.resilience.iter().rev().find(|p| p.value.is_finite());
        let dlast = r
            .distortion
            .iter()
            .rev()
            .find(|p| p.value.is_finite() && p.avg_size >= 8.0);
        println!(
            "{:10} n={:6} sig={} | E-rate={:.3} | R-expo={:.3} R-last=({:.0},{:.1}) | D-last=({:.0},{:.2} thr {:.2})",
            t.name, t.graph.node_count(), r.signature, er, rx,
            rlast.map(|p| p.avg_size).unwrap_or(0.0), rlast.map(|p| p.value).unwrap_or(f64::NAN),
            dlast.map(|p| p.avg_size).unwrap_or(0.0), dlast.map(|p| p.value).unwrap_or(f64::NAN),
            dlast.map(|p| 0.40 * p.avg_size.ln()).unwrap_or(f64::NAN),
        );
    }
}
