//! Vertex cover growth (Appendix B, Figure 8(a–c); metric suggested by
//! Park \[33\] in the context of traceback placement).
//!
//! The size of a (approximately minimum) vertex cover of the subgraph
//! inside balls of growing size. Exact minimum vertex cover is NP-hard;
//! we provide both the classical matching-based 2-approximation (with a
//! guarantee) and the greedy max-degree heuristic (usually smaller), and
//! use the smaller of the two.

use crate::balls::{ball_curve, BallSource};
use crate::CurvePoint;
use topogen_graph::{Graph, NodeId};

/// Matching-based 2-approximate vertex cover: take both endpoints of a
/// maximal matching. |cover| ≤ 2·OPT.
pub fn vertex_cover_matching(g: &Graph) -> Vec<NodeId> {
    let mut covered = vec![false; g.node_count()];
    let mut cover = Vec::new();
    for e in g.edges() {
        if !covered[e.a as usize] && !covered[e.b as usize] {
            covered[e.a as usize] = true;
            covered[e.b as usize] = true;
            cover.push(e.a);
            cover.push(e.b);
        }
    }
    cover
}

/// Greedy max-degree vertex cover: repeatedly take the node covering the
/// most uncovered edges. No constant-factor guarantee but usually beats
/// the matching bound in practice.
pub fn vertex_cover_greedy(g: &Graph) -> Vec<NodeId> {
    let n = g.node_count();
    let mut uncovered_deg: Vec<usize> = g.degrees();
    let mut in_cover = vec![false; n];
    let mut edge_covered = vec![false; g.edge_count()];
    let mut remaining = g.edge_count();
    let mut cover = Vec::new();
    // Simple priority loop; O(n² + m) worst case, fine at ball scales.
    while remaining > 0 {
        let v = (0..n)
            .filter(|&v| !in_cover[v])
            .max_by_key(|&v| uncovered_deg[v])
            .expect("uncovered edges imply an available node");
        if uncovered_deg[v] == 0 {
            break;
        }
        in_cover[v] = true;
        cover.push(v as NodeId);
        for &w in g.neighbors(v as NodeId) {
            let ei = g.edge_index(v as NodeId, w).unwrap();
            if !edge_covered[ei] {
                edge_covered[ei] = true;
                remaining -= 1;
                uncovered_deg[v] -= 1;
                if !in_cover[w as usize] {
                    uncovered_deg[w as usize] -= 1;
                }
            }
        }
    }
    cover
}

/// Smallest cover size found by the two heuristics.
pub fn vertex_cover_size(g: &Graph) -> usize {
    vertex_cover_matching(g)
        .len()
        .min(vertex_cover_greedy(g).len())
}

/// Whether `cover` covers every edge of `g` (test/validation helper).
pub fn is_vertex_cover(g: &Graph, cover: &[NodeId]) -> bool {
    let mut inc = vec![false; g.node_count()];
    for &v in cover {
        inc[v as usize] = true;
    }
    g.edges()
        .iter()
        .all(|e| inc[e.a as usize] || inc[e.b as usize])
}

/// Vertex cover as a ball-growing curve (Figure 8(a–c)).
pub fn cover_curve<S: BallSource>(
    source: &S,
    centers: &[NodeId],
    max_h: u32,
    max_ball_nodes: usize,
) -> Vec<CurvePoint> {
    ball_curve(source, centers, max_h, |g| {
        if g.node_count() > max_ball_nodes {
            return None;
        }
        Some(vertex_cover_size(g) as f64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_generators::canonical::{complete, kary_tree, mesh, ring};

    #[test]
    fn covers_are_valid() {
        for g in [kary_tree(3, 4), mesh(8, 8), ring(15), complete(10)] {
            let m = vertex_cover_matching(&g);
            assert!(is_vertex_cover(&g, &m), "matching cover invalid");
            let gr = vertex_cover_greedy(&g);
            assert!(is_vertex_cover(&g, &gr), "greedy cover invalid");
        }
    }

    #[test]
    fn star_cover_is_one() {
        let g = Graph::from_edges(10, (1..10).map(|i| (0, i)));
        assert_eq!(vertex_cover_greedy(&g).len(), 1);
        assert_eq!(vertex_cover_size(&g), 1);
    }

    #[test]
    fn complete_graph_cover() {
        // Minimum cover of K_n is n-1; greedy finds it.
        let g = complete(8);
        assert_eq!(vertex_cover_size(&g), 7);
    }

    #[test]
    fn ring_cover_half() {
        // C_2k needs k nodes.
        let g = ring(10);
        assert_eq!(vertex_cover_size(&g), 5);
    }

    #[test]
    fn matching_within_factor_two() {
        let g = mesh(6, 6);
        let m = vertex_cover_matching(&g).len();
        let opt_lb = g.edge_count() / 4; // Each node covers ≤ 4 edges.
        assert!(m <= 4 * opt_lb.max(1), "matching {m}");
        assert!(m >= 2, "nonempty");
    }

    #[test]
    fn edgeless_empty_cover() {
        let g = Graph::empty(5);
        assert_eq!(vertex_cover_size(&g), 0);
        assert!(is_vertex_cover(&g, &[]));
    }

    #[test]
    fn cover_curve_monotone_with_ball() {
        use crate::balls::PlainBalls;
        let g = mesh(9, 9);
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = vec![40];
        let c = cover_curve(&src, &centers, 8, 10_000);
        let finite: Vec<f64> = c
            .iter()
            .filter(|p| p.value.is_finite())
            .map(|p| p.value)
            .collect();
        assert!(finite.windows(2).all(|w| w[1] >= w[0]));
        assert_eq!(c[0].value, 0.0);
    }
}
