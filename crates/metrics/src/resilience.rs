//! Resilience R(n): the existence of alternate paths (§3.2.1).
//!
//! "We define the resilience R(n) to be the average minimum cut-set size
//! within an n-node ball around any node in the topology" — a function of
//! ball *size* rather than radius, "to factor out the fact that graphs
//! with high expansion will have more nodes in balls of the same radius."
//!
//! A tree has R(n) = 1, a mesh R(n) ∝ √n, and a random graph of average
//! degree k has R(n) ∝ kn — the behaviours behind Figure 2(b,e,h,k).

use crate::balls::{ball_curve, BallSource};
use crate::partition::min_balanced_cut;
use crate::CurvePoint;
use topogen_graph::NodeId;

/// Tunables for the resilience computation.
#[derive(Clone, Copy, Debug)]
pub struct ResilienceParams {
    /// Multilevel partitioner restarts per ball.
    pub restarts: usize,
    /// Skip balls larger than this (partitioning very large balls is the
    /// dominant cost; the paper also capped its computations).
    pub max_ball_nodes: usize,
    /// RNG seed for the partition heuristics.
    pub seed: u64,
}

impl Default for ResilienceParams {
    fn default() -> Self {
        ResilienceParams {
            restarts: 3,
            max_ball_nodes: 4_000,
            seed: 0xC0FFEE,
        }
    }
}

/// R as a ball-growing curve: for each radius, the average ball size and
/// average min balanced cut. Balls with < 2 nodes (or above the size
/// cap) are skipped.
pub fn resilience_curve<S: BallSource>(
    source: &S,
    centers: &[NodeId],
    max_h: u32,
    params: &ResilienceParams,
) -> Vec<CurvePoint> {
    ball_curve(source, centers, max_h, |g| {
        if g.node_count() < 2 || g.node_count() > params.max_ball_nodes {
            return None;
        }
        min_balanced_cut(g, params.restarts, params.seed).map(|c| c as f64)
    })
}

/// The (n, R) support for the growth-exponent fit: the curve's finite
/// positive points, thinned to a roughly geometric ball-size progression
/// (each kept point's average ball ≥ 20% larger than the previous kept
/// one). The thinning spaces the log–log fit evenly instead of letting
/// dense plateau points dominate, and it trims the saturated tail, where
/// the ball-size cap biases the per-radius average toward the few fringe
/// centers whose balls still fit (their cuts are atypically small).
pub fn resilience_fit_points(curve: &[CurvePoint]) -> Vec<(f64, f64)> {
    let mut pts = Vec::new();
    let mut last_n = 0.0f64;
    for p in curve {
        if p.avg_size >= 2.0 && p.value.is_finite() && p.value > 0.0 && p.avg_size >= 1.2 * last_n {
            last_n = p.avg_size;
            pts.push((p.avg_size, p.value));
        }
    }
    pts
}

/// Log–log slope of R against n over the fit support of
/// [`resilience_fit_points`] — the summary statistic used by the L/H
/// classification (random ≈ 1, mesh ≈ 0.5, tree ≈ 0).
pub fn resilience_growth_exponent(curve: &[CurvePoint]) -> f64 {
    let pts: Vec<(f64, f64)> = resilience_fit_points(curve)
        .into_iter()
        .map(|(n, r)| (n.ln(), r.ln()))
        .collect();
    if pts.len() < 2 {
        return 0.0;
    }
    // Least-squares slope.
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balls::{sample_centers, PlainBalls};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_generators::canonical::{kary_tree, mesh, random_gnp};
    use topogen_graph::components::largest_component;

    fn params() -> ResilienceParams {
        ResilienceParams {
            restarts: 2,
            max_ball_nodes: 2_000,
            seed: 1,
        }
    }

    #[test]
    fn tree_resilience_stays_low() {
        let g = kary_tree(3, 5); // 364 nodes
        let src = PlainBalls { graph: &g };
        let centers = sample_centers(g.node_count(), 12, &mut StdRng::seed_from_u64(2));
        let p = ResilienceParams {
            restarts: 6,
            max_ball_nodes: 2_000,
            seed: 1,
        };
        let curve = resilience_curve(&src, &centers, 10, &p);
        let last = curve.iter().rev().find(|p| p.value.is_finite()).unwrap();
        // A *ternary* tree's balanced bipartition needs to slice 2–4
        // subtrees to hit 45–55% (a binary tree needs exactly 1); the
        // point is that R stays O(1) rather than growing with n.
        assert!(
            last.value <= 6.5,
            "tree R({}) = {}",
            last.avg_size,
            last.value
        );
        let expo = resilience_growth_exponent(&curve);
        // Stay clearly under the classifier's H boundary (0.28); trees
        // measure ≤ 0.25 across seeds.
        assert!(expo < 0.28, "tree resilience growth exponent {expo}");
    }

    #[test]
    fn random_resilience_grows() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_gnp(500, 0.02, &mut rng);
        let (lcc, _) = largest_component(&g);
        let src = PlainBalls { graph: &lcc };
        let centers = sample_centers(lcc.node_count(), 8, &mut rng);
        let curve = resilience_curve(&src, &centers, 6, &params());
        let last = curve.iter().rev().find(|p| p.value.is_finite()).unwrap();
        assert!(
            last.value > 50.0,
            "random R({}) = {}",
            last.avg_size,
            last.value
        );
        let expo = resilience_growth_exponent(&curve);
        assert!(expo > 0.7, "random growth exponent {expo}");
    }

    #[test]
    fn mesh_resilience_sqrt_like() {
        let g = mesh(24, 24);
        let src = PlainBalls { graph: &g };
        let centers = sample_centers(g.node_count(), 10, &mut StdRng::seed_from_u64(3));
        let curve = resilience_curve(&src, &centers, 20, &params());
        let expo = resilience_growth_exponent(&curve);
        assert!(
            (0.3..0.85).contains(&expo),
            "mesh growth exponent {expo} (≈ 0.5 expected)"
        );
    }

    #[test]
    fn ordering_tree_below_mesh_below_random() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = kary_tree(3, 5);
        let m = mesh(20, 20);
        let r = {
            let g = random_gnp(400, 0.02, &mut rng);
            largest_component(&g).0
        };
        let val = |g: &topogen_graph::Graph, h: u32| {
            let src = PlainBalls { graph: g };
            let centers = sample_centers(g.node_count(), 8, &mut StdRng::seed_from_u64(4));
            let c = resilience_curve(&src, &centers, h, &params());
            c.iter().rev().find(|p| p.value.is_finite()).unwrap().value
        };
        let (vt, vm, vr) = (val(&t, 10), val(&m, 20), val(&r, 6));
        assert!(vt < vm, "tree {vt} < mesh {vm}");
        assert!(vm < vr, "mesh {vm} < random {vr}");
    }

    #[test]
    fn ball_size_cap_respected() {
        let g = mesh(20, 20);
        let src = PlainBalls { graph: &g };
        let p = ResilienceParams {
            restarts: 1,
            max_ball_nodes: 30,
            seed: 1,
        };
        let curve = resilience_curve(&src, &[0, 210], 40, &p);
        // Large balls skipped → values become NaN at big radii.
        assert!(curve.last().unwrap().value.is_nan());
        // Small radii still computed.
        assert!(curve[2].value.is_finite());
    }
}
