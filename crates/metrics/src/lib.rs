//! # topogen-metrics
//!
//! The paper's topology metrics, built on the ball-growing methodology of
//! §3.2.1: measure a quantity on the subgraph inside a ball of radius
//! `h`, then study how it grows with ball size — which factors out the
//! order-of-magnitude size differences between the compared networks.
//!
//! **The three basic metrics** (the smallest set that distinguishes all
//! the paper's topologies):
//!
//! * [`expansion`] — E(h), the average fraction of nodes within `h` hops
//!   (§3.2.1 "rate of spreading").
//! * [`resilience`] — R(n), the average minimum cut-set of a balanced
//!   bipartition of an `n`-node ball ("existence of alternate paths"),
//!   computed with the multilevel partitioning heuristics of
//!   [`partition`] (after Karypis–Kumar \[25\]).
//! * [`distortion`] — D(n), the average spanning-tree distortion of an
//!   `n`-node ball ("tree-like behavior", after Hu \[22\]), using the
//!   paper's center-rooted-BFS heuristic (footnote 14) plus a
//!   Bartal-style decomposition cross-check (footnote 15).
//!
//! **The auxiliary metrics of Appendix B:**
//!
//! * [`spectrum`] — adjacency eigenvalues vs rank (Figure 7(a–c)).
//! * [`eccentricity`] — node diameter distribution (Figure 7(d–f)).
//! * [`cover`] — vertex cover growth (Figure 8(a–c)).
//! * [`bicon_metric`] — biconnected component growth (Figure 8(d–f)).
//! * [`tolerance`] — attack and error tolerance (Figure 9, after Albert
//!   et al. \[3\]).
//! * [`clustering`] — clustering coefficients, ball-grown and global
//!   (Figure 10, after Watts–Strogatz \[46\] / Bu–Towsley \[8\]).
//! * [`extra`] — the footnote-22 extras: per-ball average path length
//!   and expected center-to-surface max flow.
//!
//! [`balls`] provides the shared ball-source abstraction — plain BFS
//! balls or policy-induced balls (Appendix E) — so every metric can run
//! with and without policy routing, exactly as the paper reports for the
//! AS and RL graphs. [`engine`] runs several per-ball metrics over one
//! shared set of balls per center (one traversal serves every consumer),
//! with [`instrument`] counting the work it saves. The scoped-thread
//! parallel map spreading per-center computations over cores lives in
//! the shared `topogen-par` crate (re-exported here as [`par`]), which
//! also serves the `topogen-hierarchy` link-value pipeline (this
//! workload is CPU-bound; threads, not async).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use topogen_par::instrument;
pub use topogen_par::par;

pub mod balls;
pub mod bicon_metric;
pub mod clustering;
pub mod cover;
pub mod distortion;
pub mod eccentricity;
pub mod engine;
pub mod expansion;
pub mod extra;
pub mod partition;
pub mod resilience;
pub mod spectrum;
pub mod tolerance;

pub use balls::{BallSource, PlainBalls, PolicyBalls};
pub use engine::{BallMetric, BallPlan, MeasureCtx, PlanResult};
pub use expansion::expansion_curve;
pub use instrument::{Instrument, InstrumentReport};

/// A point on a ball-growing curve: the average ball size and average
/// metric value over all sampled balls of one radius.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Ball radius `h`.
    pub radius: u32,
    /// Average number of nodes inside balls of this radius.
    pub avg_size: f64,
    /// Average metric value over those balls.
    pub value: f64,
}
