//! The shared-ball metrics engine.
//!
//! The legacy path had every ball-growing metric call
//! [`BallSource::balls_up_to`] independently: with k metrics over the
//! same centers, each center's BFS + ball construction ran k times.
//! [`BallPlan`] inverts that: per sampled center it computes the
//! radius-indexed ball subgraphs (and, for expansion, the distance
//! field) **once**, and hands each ball to every registered
//! [`BallMetric`] consumer. An [`Instrument`] sink counts traversals,
//! balls built, cache hits and partitioner restarts so the sharing is
//! observable in timing reports.
//!
//! Determinism: per-center RNG seeds are derived from the plan seed and
//! the center id (SplitMix64 finalizer), work is distributed by
//! [`topogen_par::par_map_threads`] which preserves input order, and
//! aggregation walks centers in their fixed sampled order — so results
//! are bit-identical for any thread count, including one.
//!
//! Kernel selection: when the source exposes a plain graph
//! ([`BallSource::plain_graph`]), the plan picks between the per-center
//! scalar BFS and the batched bitset kernels of
//! [`topogen_graph::bfs_bitset`] via [`select_kernel`] — an explicit
//! heuristic over (n, density, centers requested), overridable with
//! [`BallPlan::kernel`]. The decision is instrumented (a
//! `kernel-select` trace span plus nonzero `words_scanned` /
//! `frontier_passes` counters on the bitset path), and both paths
//! produce bit-identical distances, ring sizes, ball memberships, and
//! downstream curve aggregates.

use crate::balls::BallSource;
use crate::instrument::{Instrument, InstrumentReport};
use crate::partition::min_balanced_cut;
use crate::CurvePoint;
use std::cell::RefCell;
use std::time::Instant;
use topogen_graph::bfs_bitset::{
    multi_source_ring_counts, select_kernel, BfsStats, BitsetScratch, KernelChoice, MAX_LANES,
};
use topogen_graph::subgraph::induced_subgraph;
use topogen_graph::{Graph, NodeId, UNREACHED};
use topogen_par::par_map_threads;

pub use topogen_graph::bfs_bitset::KernelPolicy;

/// Per-ball context handed to a [`BallMetric`]: which ball this is, a
/// deterministic seed unique to (plan seed, center, radius), and the
/// instrumentation sink.
pub struct MeasureCtx<'a> {
    /// The original-graph id of the ball's center.
    pub center: NodeId,
    /// The ball's radius.
    pub radius: u32,
    /// Deterministic seed for this (center, radius) ball, independent of
    /// scheduling and thread count.
    pub seed: u64,
    /// Counter sink (consumers report restarts etc. here).
    pub instrument: &'a Instrument,
}

/// A per-ball metric consumer registered with a [`BallPlan`].
///
/// `measure` maps one ball subgraph to a value; `None` skips the ball
/// (too small / too large), exactly like the legacy
/// [`crate::balls::ball_curve`] closure contract.
pub trait BallMetric: Sync {
    /// Short stable name, used for phase timings and curve lookup.
    fn name(&self) -> &'static str;

    /// Metric value on one ball, or `None` to skip it.
    fn measure(&self, ball: &Graph, ctx: &MeasureCtx<'_>) -> Option<f64>;
}

/// Per-job output of the measurement phase: per-metric `(size, value)`
/// rows for ball centers, expansion cumulative counts for expansion
/// centers.
///
/// A job's output depends only on the plan's seed, radius budget and the
/// job's own `(center, is_ball, is_expansion)` triple — never on which
/// other jobs ran alongside it (per-center seeds come from
/// [`mix_seed`], ring counts are exact integers on every kernel). That
/// independence is what makes batched, checkpointed suite runs
/// bit-identical to one-shot runs: collect any partition of
/// [`BallPlan::jobs`] in any number of [`BallPlan::run_collect`] calls,
/// concatenate in job order, and [`BallPlan::aggregate`] reproduces
/// [`BallPlan::run`] exactly.
pub type JobOut = (Option<Vec<(f64, Vec<f64>)>>, Option<Vec<usize>>);

/// SplitMix64 finalizer: decorrelates per-center/per-radius seeds.
fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resilience R(n) as an engine consumer: min balanced cut per ball
/// (seeded from the ball context, restarts reported to the instrument).
pub struct ResilienceMetric {
    /// Multilevel partitioner restarts per ball.
    pub restarts: usize,
    /// Skip balls larger than this.
    pub max_ball_nodes: usize,
}

impl BallMetric for ResilienceMetric {
    fn name(&self) -> &'static str {
        "resilience"
    }

    fn measure(&self, ball: &Graph, ctx: &MeasureCtx<'_>) -> Option<f64> {
        if ball.node_count() < 2 || ball.node_count() > self.max_ball_nodes {
            return None;
        }
        ctx.instrument
            .add_partitioner_restarts(self.restarts as u64);
        min_balanced_cut(ball, self.restarts, ctx.seed).map(|c| c as f64)
    }
}

/// Distortion D(n) as an engine consumer (BFS-tree heuristics + Bartal
/// cross-check, seeded from the ball context).
pub struct DistortionMetric {
    /// Skip balls larger than this.
    pub max_ball_nodes: usize,
    /// Run the Bartal-style decomposition cross-check.
    pub use_bartal: bool,
    /// Polish candidate trees with re-parenting local search.
    pub polish: bool,
}

impl BallMetric for DistortionMetric {
    fn name(&self) -> &'static str {
        "distortion"
    }

    fn measure(&self, ball: &Graph, ctx: &MeasureCtx<'_>) -> Option<f64> {
        if ball.node_count() > self.max_ball_nodes {
            return None;
        }
        let params = crate::distortion::DistortionParams {
            max_ball_nodes: self.max_ball_nodes,
            use_bartal: self.use_bartal,
            polish: self.polish,
            seed: ctx.seed,
        };
        crate::distortion::graph_distortion(ball, &params)
    }
}

/// Vertex cover growth (Appendix B, Figure 8(a–c)) as an engine consumer.
pub struct CoverMetric {
    /// Skip balls larger than this.
    pub max_ball_nodes: usize,
}

impl BallMetric for CoverMetric {
    fn name(&self) -> &'static str {
        "cover"
    }

    fn measure(&self, ball: &Graph, _ctx: &MeasureCtx<'_>) -> Option<f64> {
        if ball.node_count() > self.max_ball_nodes {
            return None;
        }
        Some(crate::cover::vertex_cover_size(ball) as f64)
    }
}

/// Biconnected-component growth (Appendix B, Figure 8(d–f)) as an
/// engine consumer.
pub struct BiconMetric {
    /// Skip balls larger than this.
    pub max_ball_nodes: usize,
}

impl BallMetric for BiconMetric {
    fn name(&self) -> &'static str {
        "bicon"
    }

    fn measure(&self, ball: &Graph, _ctx: &MeasureCtx<'_>) -> Option<f64> {
        if ball.node_count() > self.max_ball_nodes {
            return None;
        }
        Some(topogen_graph::bicon::biconnected_component_count(ball) as f64)
    }
}

/// Ball-grown clustering coefficient (Figure 10) as an engine consumer.
pub struct ClusteringMetric {
    /// Skip balls larger than this.
    pub max_ball_nodes: usize,
}

impl BallMetric for ClusteringMetric {
    fn name(&self) -> &'static str {
        "clustering"
    }

    fn measure(&self, ball: &Graph, _ctx: &MeasureCtx<'_>) -> Option<f64> {
        if ball.node_count() > self.max_ball_nodes {
            return None;
        }
        crate::clustering::graph_clustering(ball)
    }
}

/// Per-ball average path length (footnote 22) as an engine consumer.
pub struct PathLengthMetric {
    /// Skip balls larger than this.
    pub max_ball_nodes: usize,
}

impl BallMetric for PathLengthMetric {
    fn name(&self) -> &'static str {
        "path_length"
    }

    fn measure(&self, ball: &Graph, _ctx: &MeasureCtx<'_>) -> Option<f64> {
        if ball.node_count() < 2 || ball.node_count() > self.max_ball_nodes {
            return None;
        }
        let nodes: Vec<NodeId> = ball.nodes().collect();
        topogen_graph::bfs::average_path_length(ball, &nodes)
    }
}

/// Everything a [`BallPlan::run`] produces: one curve per registered
/// metric (same order as registration), the expansion curve (empty if
/// no expansion centers were set), and the instrumentation snapshot.
#[derive(Clone, Debug)]
pub struct PlanResult {
    /// Metric names, parallel to `curves`.
    pub names: Vec<&'static str>,
    /// One ball-growing curve per registered metric.
    pub curves: Vec<Vec<CurvePoint>>,
    /// E(h) over the expansion centers (empty when none were set).
    pub expansion: Vec<f64>,
    /// Counter + phase-timing snapshot of the run.
    pub report: InstrumentReport,
}

impl PlanResult {
    /// The curve of the metric registered under `name`, if any.
    pub fn curve(&self, name: &str) -> Option<&[CurvePoint]> {
        self.names
            .iter()
            .position(|&n| n == name)
            .map(|i| self.curves[i].as_slice())
    }
}

/// A configured shared-ball run: source, centers, radius budget,
/// registered consumers. Build with [`BallPlan::new`] + the builder
/// methods, then call [`BallPlan::run`].
pub struct BallPlan<'a, S: BallSource> {
    source: &'a S,
    max_radius: u32,
    seed: u64,
    threads: Option<usize>,
    ball_centers: Vec<NodeId>,
    expansion_centers: Vec<NodeId>,
    metrics: Vec<&'a dyn BallMetric>,
    ctx: Option<topogen_par::EngineCtx>,
    kernel: KernelPolicy,
    ball_size_cap: Option<usize>,
}

impl<'a, S: BallSource> BallPlan<'a, S> {
    /// A plan over `source` with ball radii `0..=max_radius` and the
    /// given master seed (per-ball seeds derive from it).
    pub fn new(source: &'a S, max_radius: u32, seed: u64) -> Self {
        BallPlan {
            source,
            max_radius,
            seed,
            threads: None,
            ball_centers: Vec::new(),
            expansion_centers: Vec::new(),
            metrics: Vec::new(),
            ctx: None,
            kernel: topogen_graph::bfs_bitset::default_policy(),
            ball_size_cap: None,
        }
    }

    /// Kernel policy for this plan (defaults to the process default,
    /// i.e. `--kernel` or `Auto`). [`KernelPolicy::Auto`] consults
    /// [`select_kernel`]; forcing `Scalar`/`Bitset` pins the path.
    pub fn kernel(mut self, policy: KernelPolicy) -> Self {
        self.kernel = policy;
        self
    }

    /// Skip *constructing* ball subgraphs larger than `cap` nodes on the
    /// bitset path, synthesizing the skipped-ball rows (size + NaN per
    /// metric) the scalar path would produce after every metric declines
    /// the oversized ball.
    ///
    /// Only set this when **every** registered metric returns `None` for
    /// balls larger than `cap` (the suite metrics all skip above their
    /// shared `max_ball_nodes`); otherwise the two paths would diverge.
    /// The scalar path ignores the cap entirely.
    pub fn ball_size_cap(mut self, cap: Option<usize>) -> Self {
        self.ball_size_cap = cap;
        self
    }

    /// Centers whose balls feed the registered metrics.
    pub fn ball_centers(mut self, centers: Vec<NodeId>) -> Self {
        self.ball_centers = centers;
        self
    }

    /// Centers for the expansion average (typically a larger sample;
    /// any overlap with ball centers is served from the shared balls).
    pub fn expansion_centers(mut self, centers: Vec<NodeId>) -> Self {
        self.expansion_centers = centers;
        self
    }

    /// Explicit worker-thread count (`None` = available parallelism).
    /// Results are identical for every setting; tests use `Some(1)`.
    pub fn threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Register a per-ball metric consumer.
    pub fn metric(mut self, m: &'a dyn BallMetric) -> Self {
        self.metrics.push(m);
        self
    }

    /// Run under an explicit engine context instead of whatever
    /// deadline/sink is ambient on the calling thread — the re-entrant
    /// path concurrent callers (one context per request) use. Without
    /// this, [`run`](Self::run) observes the ambient state, as before.
    pub fn context(mut self, ctx: topogen_par::EngineCtx) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Run the plan: one `balls_up_to` per ball center (shared by all
    /// metrics), one `distances` per expansion-only center.
    pub fn run(&self) -> PlanResult {
        match &self.ctx {
            Some(ctx) => ctx.scope(|| self.run_inner()),
            None => self.run_inner(),
        }
    }

    /// The deduplicated, sorted job list this plan runs: one
    /// `(center, is_ball, is_expansion)` triple per distinct center.
    /// Checkpointed suites partition this list into batches and feed
    /// each through [`run_collect`](Self::run_collect).
    pub fn jobs(&self) -> Vec<(NodeId, bool, bool)> {
        self.merge_centers()
    }

    /// Measurement phase only, over an explicit job slice: returns one
    /// [`JobOut`] per job (same order) plus the instrument snapshot of
    /// just this batch. See [`JobOut`] for the batching-independence
    /// contract that makes partial collects resumable.
    pub fn run_collect(&self, jobs: &[(NodeId, bool, bool)]) -> (Vec<JobOut>, InstrumentReport) {
        let body = || {
            let instrument = Instrument::new();
            let outputs = self.collect_with(jobs, &instrument);
            (outputs, instrument.report())
        };
        match &self.ctx {
            Some(ctx) => ctx.scope(body),
            None => body(),
        }
    }

    fn collect_with(&self, jobs: &[(NodeId, bool, bool)], instrument: &Instrument) -> Vec<JobOut> {
        // Fault site + deadline checkpoint at the phase boundary; both
        // are no-ops unless armed / a deadline is ambient.
        topogen_par::faults::inject(
            "metric",
            self.metrics.first().map_or("expansion", |m| m.name()),
        );
        topogen_par::cancel::checkpoint();
        let _plan_span = topogen_par::trace::span("ball-plan");
        let radii = self.max_radius as usize + 1;

        // Kernel selection: the batched bitset path needs plain
        // shortest-path balls over an exposed graph; everything else
        // (policy/overlay sources) is scalar by construction.
        let choice = match self.source.plain_graph() {
            Some(g) => select_kernel(self.kernel, g.node_count(), g.edge_count(), jobs.len()),
            None => KernelChoice::Scalar,
        };
        drop(topogen_par::trace::span_labeled(
            "kernel-select",
            choice.tag(),
        ));

        match (choice, self.source.plain_graph()) {
            (KernelChoice::Bitset, Some(g)) => self.run_jobs_bitset(g, jobs, instrument, radii),
            _ => par_map_threads(jobs, self.threads, |&job| {
                self.run_job_scalar(job, instrument, radii)
            }),
        }
    }

    /// Aggregation phase: fold concatenated per-job outputs (in job
    /// order — see [`Self::jobs`]) into the final [`PlanResult`], with
    /// `report` as the run's instrument snapshot. `run` =
    /// `aggregate(run_collect(jobs))`; checkpointed suites call this
    /// once after the last batch lands.
    pub fn aggregate(&self, outputs: &[JobOut], report: InstrumentReport) -> PlanResult {
        let radii = self.max_radius as usize + 1;
        // Aggregate in fixed job order: bit-identical for any thread
        // count, and matching the legacy ball_curve semantics (only
        // finite values contribute to the size/value averages).
        let curves = (0..self.metrics.len())
            .map(|mi| {
                (0..radii as u32)
                    .map(|h| {
                        let mut size_sum = 0.0;
                        let mut val_sum = 0.0;
                        let mut val_n = 0usize;
                        for (rows, _) in outputs {
                            if let Some(rows) = rows {
                                if let Some((s, vals)) = rows.get(h as usize) {
                                    let v = vals[mi];
                                    if v.is_finite() {
                                        size_sum += *s;
                                        val_sum += v;
                                        val_n += 1;
                                    }
                                }
                            }
                        }
                        CurvePoint {
                            radius: h,
                            avg_size: if val_n > 0 {
                                size_sum / val_n as f64
                            } else {
                                0.0
                            },
                            value: if val_n > 0 {
                                val_sum / val_n as f64
                            } else {
                                f64::NAN
                            },
                        }
                    })
                    .collect()
            })
            .collect();

        let expansion = if self.expansion_centers.is_empty() {
            Vec::new()
        } else {
            let n = self.source.node_count();
            let denom = self.expansion_centers.len() as f64 * n as f64;
            (0..radii)
                .map(|h| {
                    if denom == 0.0 {
                        return 0.0;
                    }
                    let total: usize = outputs
                        .iter()
                        .filter_map(|(_, cum)| cum.as_ref())
                        .map(|c| c[h])
                        .sum();
                    total as f64 / denom
                })
                .collect()
        };

        PlanResult {
            names: self.metrics.iter().map(|m| m.name()).collect(),
            curves,
            expansion,
            report,
        }
    }

    fn run_inner(&self) -> PlanResult {
        let t_total = Instant::now();
        let instrument = Instrument::new();
        let jobs = self.merge_centers();
        let outputs = self.collect_with(&jobs, &instrument);
        // Phase boundary between measurement and aggregation.
        topogen_par::cancel::checkpoint();
        instrument.add_phase("total", t_total.elapsed());
        self.aggregate(&outputs, instrument.report())
    }

    /// One scalar job: the PR-1 per-center path, verbatim — one
    /// `balls_up_to` per ball center, one `distances` per
    /// expansion-only center.
    fn run_job_scalar(
        &self,
        (c, is_ball, is_exp): (NodeId, bool, bool),
        instrument: &Instrument,
        radii: usize,
    ) -> JobOut {
        let _center_span = topogen_par::trace::span("center");
        let mut ball_rows = None;
        let mut cum = None;
        if is_ball {
            let t0 = Instant::now();
            let ball_span = topogen_par::trace::span("balls");
            let balls = self.source.balls_up_to(c, self.max_radius);
            drop(ball_span);
            instrument.add_bfs_runs(1);
            instrument.add_balls_built(balls.len() as u64);
            instrument.add_phase("balls", t0.elapsed());
            if self.metrics.len() > 1 {
                // Every consumer after the first reuses each ball.
                instrument
                    .add_ball_cache_hits(balls.len() as u64 * (self.metrics.len() as u64 - 1));
            }
            let center_seed = mix_seed(self.seed, c as u64);
            let rows = balls
                .iter()
                .enumerate()
                .map(|(h, (g, _))| {
                    let ctx = MeasureCtx {
                        center: c,
                        radius: h as u32,
                        seed: mix_seed(center_seed, h as u64),
                        instrument,
                    };
                    let vals = self
                        .metrics
                        .iter()
                        .map(|m| {
                            let t1 = Instant::now();
                            let _m_span = topogen_par::trace::span_labeled("measure", m.name());
                            let v = m.measure(g, &ctx).unwrap_or(f64::NAN);
                            instrument.add_phase(m.name(), t1.elapsed());
                            v
                        })
                        .collect();
                    (g.node_count() as f64, vals)
                })
                .collect();
            if is_exp {
                // The ball of radius h contains exactly the nodes
                // within h hops: expansion comes free from sizes.
                instrument.add_ball_cache_hits(1);
                cum = Some(balls.iter().map(|(g, _)| g.node_count()).collect());
            }
            ball_rows = Some(rows);
        } else if is_exp {
            let t0 = Instant::now();
            let _dist_span = topogen_par::trace::span("distances");
            let dist = self.source.distances(c);
            instrument.add_bfs_runs(1);
            let mut counts = vec![0usize; radii];
            for &d in &dist {
                if d != UNREACHED && d <= self.max_radius {
                    counts[d as usize] += 1;
                }
            }
            for h in 1..radii {
                counts[h] += counts[h - 1];
            }
            instrument.add_phase("distances", t0.elapsed());
            cum = Some(counts);
        }
        (ball_rows, cum)
    }

    /// The batched bitset path over a plain graph: ball centers run one
    /// direction-optimizing bounded BFS each (per-worker reused
    /// scratch), expansion-only centers advance in 64-lane multi-source
    /// passes. Outputs land at each job's original index, so the shared
    /// aggregation below is oblivious to the kernel.
    fn run_jobs_bitset(
        &self,
        g: &Graph,
        jobs: &[(NodeId, bool, bool)],
        instrument: &Instrument,
        radii: usize,
    ) -> Vec<JobOut> {
        let mut outputs: Vec<JobOut> = vec![(None, None); jobs.len()];

        let ball_jobs: Vec<(usize, NodeId, bool)> = jobs
            .iter()
            .enumerate()
            .filter(|(_, &(_, is_ball, _))| is_ball)
            .map(|(i, &(c, _, is_exp))| (i, c, is_exp))
            .collect();
        let exp_jobs: Vec<(usize, NodeId)> = jobs
            .iter()
            .enumerate()
            .filter(|(_, &(_, is_ball, is_exp))| !is_ball && is_exp)
            .map(|(i, &(c, _, _))| (i, c))
            .collect();

        let ball_outs = par_map_threads(&ball_jobs, self.threads, |&(_, c, is_exp)| {
            self.run_ball_bitset(g, c, is_exp, instrument, radii)
        });
        for (&(i, _, _), out) in ball_jobs.iter().zip(ball_outs) {
            outputs[i] = out;
        }

        // Chunk expansion-only centers into 64-lane batches; each chunk
        // is one multi-source traversal.
        let chunks: Vec<&[(usize, NodeId)]> = exp_jobs.chunks(MAX_LANES).collect();
        let chunk_outs = par_map_threads(&chunks, self.threads, |chunk| {
            let t0 = Instant::now();
            let _dist_span = topogen_par::trace::span("distances");
            let sources: Vec<NodeId> = chunk.iter().map(|&(_, c)| c).collect();
            let mut stats = BfsStats::default();
            let rings = multi_source_ring_counts(g, &sources, self.max_radius, &mut stats);
            instrument.add_bfs_runs(sources.len() as u64);
            instrument.add_words_scanned(stats.words_scanned);
            instrument.add_frontier_passes(stats.frontier_passes);
            instrument.add_phase("distances", t0.elapsed());
            rings
                .into_iter()
                .map(|mut counts| {
                    for h in 1..radii {
                        counts[h] += counts[h - 1];
                    }
                    counts
                })
                .collect::<Vec<_>>()
        });
        for (chunk, cums) in chunks.iter().zip(chunk_outs) {
            for (&(i, _), cum) in chunk.iter().zip(cums) {
                outputs[i] = (None, Some(cum));
            }
        }
        outputs
    }

    /// One ball center on the bitset path: a single bounded BFS yields
    /// the distance field; each radius's ball is the `(distance, id)`-
    /// sorted prefix of the reached set — exactly the scalar
    /// [`topogen_graph::subgraph::ball`] membership and order, without
    /// one BFS per radius. Balls larger than [`Self::ball_size_cap`]
    /// skip construction (every metric would decline them).
    fn run_ball_bitset(
        &self,
        g: &Graph,
        c: NodeId,
        is_exp: bool,
        instrument: &Instrument,
        radii: usize,
    ) -> JobOut {
        thread_local! {
            static SCRATCH: RefCell<BitsetScratch> = RefCell::new(BitsetScratch::new());
        }
        let _center_span = topogen_par::trace::span("center");
        let t0 = Instant::now();
        let ball_span = topogen_par::trace::span("balls");
        let (sorted, mut cum) = SCRATCH.with(|s| {
            let mut s = s.borrow_mut();
            let mut stats = BfsStats::default();
            s.run_bounded(g, c, self.max_radius, &mut stats);
            instrument.add_words_scanned(stats.words_scanned);
            instrument.add_frontier_passes(stats.frontier_passes);
            // Cumulative ball sizes per radius = prefix sums of rings.
            let mut cum = s.ring_sizes(self.max_radius);
            for h in 1..radii {
                cum[h] += cum[h - 1];
            }
            (s.ball_nodes_sorted(), cum)
        });
        instrument.add_bfs_runs(1);
        instrument.add_phase("balls", t0.elapsed());
        drop(ball_span);

        let center_seed = mix_seed(self.seed, c as u64);
        let cap = self.ball_size_cap.unwrap_or(usize::MAX);
        let mut built = 0u64;
        let rows: Vec<(f64, Vec<f64>)> = cum
            .iter()
            .enumerate()
            .map(|(h, &size)| {
                if size > cap {
                    // Sizes are monotone in h: every metric skips this
                    // and all larger balls, so the scalar path would
                    // produce exactly (size, NaN…) here.
                    return (size as f64, vec![f64::NAN; self.metrics.len()]);
                }
                let t_build = Instant::now();
                let (ball, _) = induced_subgraph(g, &sorted[..size]);
                instrument.add_phase("balls", t_build.elapsed());
                built += 1;
                let ctx = MeasureCtx {
                    center: c,
                    radius: h as u32,
                    seed: mix_seed(center_seed, h as u64),
                    instrument,
                };
                let vals = self
                    .metrics
                    .iter()
                    .map(|m| {
                        let t1 = Instant::now();
                        let _m_span = topogen_par::trace::span_labeled("measure", m.name());
                        let v = m.measure(&ball, &ctx).unwrap_or(f64::NAN);
                        instrument.add_phase(m.name(), t1.elapsed());
                        v
                    })
                    .collect();
                (ball.node_count() as f64, vals)
            })
            .collect();
        instrument.add_balls_built(built);
        if self.metrics.len() > 1 {
            instrument.add_ball_cache_hits(built * (self.metrics.len() as u64 - 1));
        }
        if !is_exp {
            cum.clear();
        } else {
            instrument.add_ball_cache_hits(1);
        }
        (Some(rows), if cum.is_empty() { None } else { Some(cum) })
    }

    /// Merge the two sorted center lists into one deduplicated job list
    /// of `(center, is_ball, is_expansion)`, preserving sorted order.
    fn merge_centers(&self) -> Vec<(NodeId, bool, bool)> {
        let mut jobs = Vec::with_capacity(self.ball_centers.len() + self.expansion_centers.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ball_centers.len() || j < self.expansion_centers.len() {
            let b = self.ball_centers.get(i).copied();
            let e = self.expansion_centers.get(j).copied();
            match (b, e) {
                (Some(b), Some(e)) if b == e => {
                    jobs.push((b, true, true));
                    i += 1;
                    j += 1;
                }
                (Some(b), Some(e)) if b < e => {
                    jobs.push((b, true, false));
                    i += 1;
                }
                (_, Some(e)) => {
                    jobs.push((e, false, true));
                    j += 1;
                }
                (Some(b), None) => {
                    jobs.push((b, true, false));
                    i += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balls::{ball_curve, PlainBalls};
    use crate::expansion::expansion_curve;
    use topogen_graph::Graph;

    /// Seed-independent test metric: edge count of the ball.
    struct EdgeCount;

    impl BallMetric for EdgeCount {
        fn name(&self) -> &'static str {
            "edges"
        }

        fn measure(&self, ball: &Graph, _ctx: &MeasureCtx<'_>) -> Option<f64> {
            Some(ball.edge_count() as f64)
        }
    }

    fn mesh8() -> Graph {
        let mut e = Vec::new();
        for r in 0..8u32 {
            for c in 0..8u32 {
                let v = r * 8 + c;
                if c + 1 < 8 {
                    e.push((v, v + 1));
                }
                if r + 1 < 8 {
                    e.push((v, v + 8));
                }
            }
        }
        Graph::from_edges(64, e)
    }

    #[test]
    fn engine_matches_legacy_ball_curve() {
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = vec![0, 9, 27, 63];
        let legacy = ball_curve(&src, &centers, 5, |b| Some(b.edge_count() as f64));
        let em = EdgeCount;
        let plan = BallPlan::new(&src, 5, 1).ball_centers(centers).metric(&em);
        let out = plan.run();
        assert_eq!(out.curves[0].len(), legacy.len());
        for (a, b) in out.curves[0].iter().zip(&legacy) {
            assert_eq!(a.radius, b.radius);
            assert_eq!(a.avg_size.to_bits(), b.avg_size.to_bits());
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn engine_matches_legacy_expansion() {
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = (0..64).collect();
        let legacy = expansion_curve(&src, &centers, 10);
        let out = BallPlan::new(&src, 10, 1).expansion_centers(centers).run();
        assert_eq!(out.expansion.len(), legacy.len());
        for (a, b) in out.expansion.iter().zip(&legacy) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn expansion_served_from_shared_balls_when_centers_overlap() {
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = vec![0, 20, 40];
        let legacy = expansion_curve(&src, &centers, 6);
        let em = EdgeCount;
        let out = BallPlan::new(&src, 6, 1)
            .ball_centers(centers.clone())
            .expansion_centers(centers)
            .metric(&em)
            .run();
        for (a, b) in out.expansion.iter().zip(&legacy) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // All three centers shared: no standalone distance pass at all.
        assert_eq!(out.report.bfs_runs, 3);
        assert_eq!(out.report.ball_cache_hits, 3); // one per shared center
    }

    #[test]
    fn cache_hits_count_extra_consumers() {
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let em = EdgeCount;
        let res = ResilienceMetric {
            restarts: 1,
            max_ball_nodes: 100,
        };
        let out = BallPlan::new(&src, 4, 7)
            .ball_centers(vec![0, 36])
            .metric(&em)
            .metric(&res)
            .run();
        // 2 centers × 5 radii × (2 consumers - 1) reuses.
        assert_eq!(out.report.ball_cache_hits, 10);
        assert_eq!(out.report.balls_built, 10);
        assert_eq!(out.report.bfs_runs, 2);
        assert!(out.report.partitioner_restarts > 0);
    }

    #[test]
    fn thread_counts_bit_identical() {
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = (0..64).step_by(3).collect();
        let exp: Vec<NodeId> = (0..64).collect();
        let run = |threads| {
            let res = ResilienceMetric {
                restarts: 2,
                max_ball_nodes: 64,
            };
            let dis = DistortionMetric {
                max_ball_nodes: 64,
                use_bartal: true,
                polish: false,
            };
            let plan = BallPlan::new(&src, 8, 0x51DE)
                .ball_centers(centers.clone())
                .expansion_centers(exp.clone())
                .threads(Some(threads))
                .metric(&res)
                .metric(&dis);
            let out = plan.run();
            (
                out.expansion
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                out.curves
                    .iter()
                    .map(|c| {
                        c.iter()
                            .map(|p| (p.avg_size.to_bits(), p.value.to_bits()))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let one = run(1);
        for t in [2, 4, 7] {
            assert_eq!(run(t), one, "threads={t}");
        }
    }

    fn fingerprint(out: &PlanResult) -> (Vec<u64>, Vec<Vec<(u64, u64)>>) {
        (
            out.expansion.iter().map(|v| v.to_bits()).collect(),
            out.curves
                .iter()
                .map(|c| {
                    c.iter()
                        .map(|p| (p.avg_size.to_bits(), p.value.to_bits()))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn bitset_kernel_bit_identical_to_scalar_any_thread_count() {
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = (0..64).step_by(5).collect();
        let exp: Vec<NodeId> = (0..64).collect();
        let run = |policy, threads| {
            let res = ResilienceMetric {
                restarts: 2,
                max_ball_nodes: 40,
            };
            let dis = DistortionMetric {
                max_ball_nodes: 40,
                use_bartal: true,
                polish: false,
            };
            let out = BallPlan::new(&src, 8, 0x51DE)
                .ball_centers(centers.clone())
                .expansion_centers(exp.clone())
                .threads(Some(threads))
                .kernel(policy)
                .ball_size_cap(Some(40))
                .metric(&res)
                .metric(&dis)
                .run();
            (fingerprint(&out), out.report)
        };
        let (scalar, scalar_report) = run(KernelPolicy::Scalar, 1);
        assert_eq!(
            scalar_report.words_scanned, 0,
            "scalar path touches no bitset words"
        );
        for threads in [1, 2, 8] {
            let (bitset, report) = run(KernelPolicy::Bitset, threads);
            assert_eq!(bitset, scalar, "bitset threads={threads}");
            assert!(report.words_scanned > 0);
            assert!(report.frontier_passes > 0);
            // One traversal per center on both paths.
            assert_eq!(report.bfs_runs, scalar_report.bfs_runs);
        }
    }

    #[test]
    fn bitset_cap_matches_uncapped_when_metrics_skip() {
        // The cap only skips constructing balls every metric declines:
        // capped and uncapped bitset runs must agree bit-for-bit.
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let run = |cap| {
            let res = ResilienceMetric {
                restarts: 1,
                max_ball_nodes: 20,
            };
            let out = BallPlan::new(&src, 10, 3)
                .ball_centers(vec![0, 27, 63])
                .expansion_centers(vec![0, 9, 33])
                .kernel(KernelPolicy::Bitset)
                .ball_size_cap(cap)
                .metric(&res)
                .run();
            fingerprint(&out)
        };
        assert_eq!(run(Some(20)), run(None));
    }

    #[test]
    fn auto_policy_keeps_scalar_on_small_graphs() {
        // mesh8 is far below the Auto threshold: the plan must not
        // touch the bitset kernels (words_scanned stays zero).
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let em = EdgeCount;
        let out = BallPlan::new(&src, 4, 1)
            .ball_centers(vec![0, 9])
            .expansion_centers(vec![0, 5, 22])
            .kernel(KernelPolicy::Auto)
            .metric(&em)
            .run();
        assert_eq!(out.report.words_scanned, 0);
        assert_eq!(out.report.frontier_passes, 0);
    }

    #[test]
    fn curve_lookup_by_name() {
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let em = EdgeCount;
        let out = BallPlan::new(&src, 2, 1)
            .ball_centers(vec![0])
            .metric(&em)
            .run();
        assert!(out.curve("edges").is_some());
        assert!(out.curve("nope").is_none());
    }

    #[test]
    fn phase_timings_present() {
        let g = mesh8();
        let src = PlainBalls { graph: &g };
        let em = EdgeCount;
        let out = BallPlan::new(&src, 3, 1)
            .ball_centers(vec![0, 9])
            .expansion_centers(vec![5])
            .metric(&em)
            .run();
        let names: Vec<&str> = out.report.phases.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"balls"));
        assert!(names.contains(&"distances"));
        assert!(names.contains(&"edges"));
        assert!(names.contains(&"total"));
    }
}
