//! Expansion E(h): the rate of spreading (§3.2.1).
//!
//! "E(h) is the average fraction of nodes in the graph that fall within a
//! ball of radius h centered at a node in the topology." A tree or
//! random graph expands exponentially (`E(h) ∝ k^h / N`); a mesh
//! quadratically (`E(h) ∝ h² / N`) — the distinction behind Figure
//! 2(a,d,g,j).

use crate::balls::BallSource;
use topogen_graph::{NodeId, UNREACHED};
use topogen_par::par_map;

/// E(h) for `h = 0..=max_h`, averaged over the given centers, normalized
/// by the total node count. With `centers` = all nodes this is the
/// paper's exact definition; sampling gives an unbiased estimate.
///
/// ```
/// use topogen_graph::Graph;
/// use topogen_metrics::balls::PlainBalls;
/// use topogen_metrics::expansion::expansion_curve;
///
/// // A 5-cycle seen from every node: 1 node at h=0, 3 by h=1, all by h=2.
/// let g = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
/// let src = PlainBalls { graph: &g };
/// let centers: Vec<u32> = g.nodes().collect();
/// let e = expansion_curve(&src, &centers, 2);
/// assert_eq!(e, vec![0.2, 0.6, 1.0]);
/// ```
pub fn expansion_curve<S: BallSource>(source: &S, centers: &[NodeId], max_h: u32) -> Vec<f64> {
    let n = source.node_count();
    if n == 0 || centers.is_empty() {
        return vec![0.0; max_h as usize + 1];
    }
    let counts: Vec<Vec<usize>> = par_map(centers, |&c| {
        let dist = source.distances(c);
        let mut cum = vec![0usize; max_h as usize + 1];
        for &d in &dist {
            if d != UNREACHED && d <= max_h {
                cum[d as usize] += 1;
            }
        }
        // Ring counts → cumulative counts.
        for h in 1..cum.len() {
            cum[h] += cum[h - 1];
        }
        cum
    });
    (0..=max_h as usize)
        .map(|h| {
            let total: usize = counts.iter().map(|c| c[h]).sum();
            total as f64 / (centers.len() as f64 * n as f64)
        })
        .collect()
}

/// The smallest radius at which E(h) reaches `fraction` (e.g. 0.9), or
/// `None` if it never does within the curve. A compact "effective
/// diameter" statistic.
pub fn radius_reaching(curve: &[f64], fraction: f64) -> Option<u32> {
    curve.iter().position(|&e| e >= fraction).map(|h| h as u32)
}

/// Exponential growth rate of the expansion curve: the mean of
/// `ln(E(h+1)/E(h))` over the radii where the cumulative reach is between
/// 5% and 70% of all nodes. In that mid-range an exponentially expanding
/// graph still multiplies its reach by ≈ its branching factor each hop,
/// while a mesh-like graph's ratio `((h+1)/h)²` has already decayed
/// toward 1. This single number is what the L/H expansion classification
/// thresholds.
pub fn expansion_growth_rate(curve: &[f64]) -> f64 {
    let lo = 0.05;
    let hi = 0.7;
    let mut rates = Vec::new();
    for w in curve.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a >= lo && a <= hi && b > a {
            rates.push((b / a).ln());
        }
    }
    if rates.is_empty() {
        // Degenerate (tiny graph): fall back to the largest single jump.
        return curve
            .windows(2)
            .filter(|w| w[0] > 0.0)
            .map(|w| (w[1] / w[0]).max(1.0).ln())
            .fold(0.0, f64::max);
    }
    rates.iter().sum::<f64>() / rates.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balls::PlainBalls;
    use topogen_generators::canonical::{kary_tree, linear, mesh, random_gnp};
    use topogen_graph::Graph;

    fn all_centers(g: &Graph) -> Vec<NodeId> {
        g.nodes().collect()
    }

    #[test]
    fn expansion_reaches_one() {
        let g = kary_tree(3, 4);
        let src = PlainBalls { graph: &g };
        let c = all_centers(&g);
        let e = expansion_curve(&src, &c, 8);
        assert!((e.last().unwrap() - 1.0).abs() < 1e-12);
        assert!((e[0] - 1.0 / g.node_count() as f64).abs() < 1e-12);
        assert!(e.windows(2).all(|w| w[1] >= w[0]), "monotone");
    }

    #[test]
    fn linear_chain_expands_linearly() {
        let g = linear(101);
        let src = PlainBalls { graph: &g };
        let c = all_centers(&g);
        let e = expansion_curve(&src, &c, 100);
        // E(h) ≈ (2h+1)/N for interior nodes; growth rate near zero.
        let rate = expansion_growth_rate(&e);
        assert!(rate < 0.1, "rate {rate}");
    }

    #[test]
    fn tree_expands_exponentially() {
        let g = kary_tree(3, 6); // 1093 nodes
        let src = PlainBalls { graph: &g };
        let c = all_centers(&g);
        let e = expansion_curve(&src, &c, 14);
        let rate = expansion_growth_rate(&e);
        // Averaged over all centers (mostly deep leaves) the measured
        // rate is ≈ 0.46 — well above the mesh's ≈ 0.12.
        assert!(rate > 0.35, "rate {rate}");
    }

    #[test]
    fn mesh_expands_slowly() {
        let g = mesh(30, 30);
        let src = PlainBalls { graph: &g };
        let c = all_centers(&g);
        let e = expansion_curve(&src, &c, 58);
        let rate = expansion_growth_rate(&e);
        assert!(rate < 0.2, "rate {rate}");
    }

    #[test]
    fn random_graph_expands_fast() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let g = random_gnp(900, 0.006, &mut rng);
        let (lcc, _) = topogen_graph::components::largest_component(&g);
        let src = PlainBalls { graph: &lcc };
        let c = all_centers(&lcc);
        let e = expansion_curve(&src, &c, 15);
        let rate = expansion_growth_rate(&e);
        assert!(rate > 0.6, "rate {rate}");
    }

    #[test]
    fn mesh_vs_tree_ordering() {
        // The paper's qualitative claim: the mesh is the slow one.
        let t = kary_tree(2, 9); // 1023 nodes
        let m = mesh(32, 32); // 1024 nodes
        let rt = expansion_growth_rate(&expansion_curve(
            &PlainBalls { graph: &t },
            &all_centers(&t),
            20,
        ));
        let rm = expansion_growth_rate(&expansion_curve(
            &PlainBalls { graph: &m },
            &all_centers(&m),
            62,
        ));
        assert!(rt > rm, "tree {rt} vs mesh {rm}");
    }

    #[test]
    fn radius_reaching_works() {
        let curve = vec![0.1, 0.3, 0.95, 1.0];
        assert_eq!(radius_reaching(&curve, 0.9), Some(2));
        assert_eq!(radius_reaching(&curve, 0.3), Some(1));
        assert_eq!(radius_reaching(&[0.1, 0.2], 0.9), None);
    }

    #[test]
    fn empty_inputs() {
        let g = Graph::empty(0);
        let src = PlainBalls { graph: &g };
        let e = expansion_curve(&src, &[], 3);
        assert_eq!(e, vec![0.0; 4]);
    }
}
