//! Distortion D(n): tree-like behavior (§3.2.1, after Hu \[22\]).
//!
//! For a spanning tree T of a graph G, the distortion of T is the average
//! T-distance between the endpoints of G's edges; the distortion of G is
//! the minimum over spanning trees — NP-hard, so the paper (footnotes
//! 14–15) uses heuristics: a BFS tree rooted at the ball's "center" (the
//! node the most shortest paths traverse), plus Bartal's probabilistic
//! decomposition as a cross-check, reporting the smaller. We do the
//! same, additionally trying the maximum-degree node as a root (cheap and
//! occasionally better).

use crate::balls::{ball_curve, BallSource};
use crate::CurvePoint;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use topogen_graph::apsp::betweenness_center;
use topogen_graph::tree::{distortion_of_tree, RootedTree};
use topogen_graph::{Graph, NodeId};

/// Tunables for the distortion computation.
#[derive(Clone, Copy, Debug)]
pub struct DistortionParams {
    /// Skip balls larger than this (betweenness is O(n·m) per ball).
    pub max_ball_nodes: usize,
    /// Also run the Bartal-style decomposition cross-check.
    pub use_bartal: bool,
    /// Polish each candidate tree with re-parenting local search
    /// ([`improve_tree_distortion`]). Tightens the estimate, at a
    /// noticeable per-ball cost — off by default; the ablation bench
    /// quantifies the difference.
    pub polish: bool,
    /// Seed for the Bartal decomposition's randomness.
    pub seed: u64,
}

impl Default for DistortionParams {
    fn default() -> Self {
        DistortionParams {
            max_ball_nodes: 3_000,
            use_bartal: true,
            polish: false,
            seed: 0xBA27A1,
        }
    }
}

/// Distortion of one (connected) graph: min over the heuristic spanning
/// trees, each polished by re-parenting local search. Returns `None`
/// for graphs without edges.
pub fn graph_distortion(g: &Graph, params: &DistortionParams) -> Option<f64> {
    if g.edge_count() == 0 {
        return None;
    }
    let mut best = f64::INFINITY;
    let consider = |t: RootedTree, best: &mut f64| {
        let d = if params.polish {
            improve_tree_distortion(g, t, 8).1
        } else {
            distortion_of_tree(g, &t).unwrap_or(f64::NAN)
        };
        if d.is_finite() {
            *best = best.min(d);
        }
    };
    // Root 1: the betweenness center (the paper's footnote-14 heuristic).
    if let Some(center) = betweenness_center(g) {
        consider(RootedTree::bfs_tree(g, center), &mut best);
    }
    // Root 2: the maximum-degree node.
    let hub = (0..g.node_count() as NodeId).max_by_key(|&v| g.degree(v));
    if let Some(hub) = hub {
        consider(RootedTree::bfs_tree(g, hub), &mut best);
    }
    // Cross-check: Bartal-style random decomposition tree.
    if params.use_bartal {
        let mut rng = StdRng::seed_from_u64(params.seed);
        for _ in 0..2 {
            consider(bartal_tree(g, &mut rng), &mut best);
        }
    }
    if best.is_finite() {
        Some(best)
    } else {
        None
    }
}

/// Local search over spanning trees: repeatedly take the non-tree edges
/// with the worst tree distance and try re-parenting one endpoint under
/// the other (valid when the new parent is outside the endpoint's
/// subtree), keeping any move that lowers the total distortion. This is
/// the kind of problem-specific polishing the paper alludes to ("our own
/// heuristics resulted in smaller distortion values", footnote 15); it
/// matters most on geometric graphs (Tiers, Waxman) where BFS trees
/// separate spatially adjacent nodes.
///
/// Returns the improved tree and its distortion (`NaN` for edgeless
/// graphs).
pub fn improve_tree_distortion(
    g: &Graph,
    mut tree: RootedTree,
    rounds: usize,
) -> (RootedTree, f64) {
    let mut current = match distortion_of_tree(g, &tree) {
        Some(d) => d,
        None => return (tree, f64::NAN),
    };
    let m = g.edge_count() as f64;
    for _ in 0..rounds {
        let lca = topogen_graph::tree::Lca::new(&tree);
        // Worst-stretched non-tree edges.
        let mut stretched: Vec<(u32, NodeId, NodeId)> = g
            .edges()
            .iter()
            .filter_map(|e| {
                let d = lca.tree_distance(e.a, e.b);
                if d >= 3 {
                    Some((d, e.a, e.b))
                } else {
                    None
                }
            })
            .collect();
        stretched.sort_by_key(|&(d, ..)| std::cmp::Reverse(d));
        stretched.truncate(24);
        let mut improved = false;
        for (_, a, b) in stretched {
            for (child, parent) in [(a, b), (b, a)] {
                if child == tree.root {
                    continue;
                }
                // `parent` must not be in `child`'s subtree: walk up from
                // `parent`; if we hit `child`, skip.
                let mut x = parent;
                let mut in_subtree = false;
                while x != tree.root {
                    if x == child {
                        in_subtree = true;
                        break;
                    }
                    x = tree.parent[x as usize];
                }
                if in_subtree || tree.parent[child as usize] == parent {
                    continue;
                }
                let old_parent = tree.parent[child as usize];
                tree.parent[child as usize] = parent;
                let candidate = RootedTree::from_parents(tree.parent.clone(), tree.root);
                match distortion_of_tree(g, &candidate) {
                    Some(d) if d + 1e-12 / m < current => {
                        tree = candidate;
                        current = d;
                        improved = true;
                        break; // recompute LCA before further moves
                    }
                    _ => {
                        tree.parent[child as usize] = old_parent;
                    }
                }
            }
            if improved {
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (tree, current)
}

/// D as a ball-growing curve (average ball size vs average distortion per
/// radius).
pub fn distortion_curve<S: BallSource>(
    source: &S,
    centers: &[NodeId],
    max_h: u32,
    params: &DistortionParams,
) -> Vec<CurvePoint> {
    ball_curve(source, centers, max_h, |g| {
        if g.node_count() > params.max_ball_nodes {
            return None;
        }
        graph_distortion(g, params)
    })
}

/// A Bartal-style hierarchical decomposition spanning tree: recursively
/// split the node set into balls of geometrically shrinking radius around
/// random centers, connecting each cluster's center to its parent
/// cluster's center by a BFS path in the original graph projected onto
/// tree edges. The construction here is the simple variant: each
/// recursion level picks random centers and assigns every node to the
/// closest picked center within the level's radius; cluster centers
/// become children of the previous level's center through a BFS-tree
/// fragment. The result is a valid spanning tree of the connected input.
pub fn bartal_tree<R: Rng>(g: &Graph, rng: &mut R) -> RootedTree {
    let n = g.node_count();
    assert!(n > 0);
    // Work over the whole (assumed connected) graph: recursively refine.
    // parent[] built as we go; start from a random root.
    let root = rng.gen_range(0..n as NodeId);
    let mut parent = vec![NodeId::MAX; n];
    parent[root as usize] = root;
    // Level sets: start with the whole vertex set at radius = ecc(root).
    let full: Vec<NodeId> = (0..n as NodeId).collect();
    let ecc = topogen_graph::bfs::eccentricity(g, root).max(1);
    decompose(g, &full, root, ecc, &mut parent, rng);
    // Any node left unattached (disconnected input) hangs directly off
    // nothing; keep the tree well-formed by attaching via BFS remnants.
    RootedTree::from_parents(parent, root)
}

fn decompose<R: Rng>(
    g: &Graph,
    nodes: &[NodeId],
    center: NodeId,
    radius: u32,
    parent: &mut [NodeId],
    rng: &mut R,
) {
    if nodes.len() <= 1 {
        return;
    }
    // Membership mask of the current cluster.
    let mut in_cluster = vec![false; g.node_count()];
    for &v in nodes {
        in_cluster[v as usize] = true;
    }
    if radius <= 1 || nodes.len() <= 3 {
        // Base case: BFS tree within the cluster from the center.
        attach_bfs(g, &in_cluster, center, parent);
        return;
    }
    // Pick sub-centers: the center first, then random nodes; assign every
    // node to the first sub-center within radius/2 (BFS order).
    let half = (radius / 2).max(1);
    let mut assigned = vec![false; g.node_count()];
    let mut order: Vec<NodeId> = nodes.to_vec();
    order.shuffle(rng);
    let mut subcenters: Vec<NodeId> = vec![center];
    for &v in &order {
        if v != center {
            subcenters.push(v);
        }
    }
    let mut clusters: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
    for &c in &subcenters {
        if assigned[c as usize] {
            continue;
        }
        // Hop-bounded BFS within the cluster claiming unassigned nodes.
        let members = claim_ball(g, &in_cluster, &mut assigned, c, half);
        if !members.is_empty() {
            clusters.push((c, members));
        }
        if nodes.iter().all(|&v| assigned[v as usize]) {
            break;
        }
    }
    // Connect sub-centers to the parent center by BFS-tree paths inside
    // the full cluster (ensures tree connectivity across sub-clusters).
    attach_centers(g, &in_cluster, center, &clusters, parent);
    // Recurse into sub-clusters.
    for (c, members) in clusters {
        if c != center || members.len() < nodes.len() {
            decompose(g, &members, c, half, parent, rng);
        } else {
            // No progress (one cluster swallowed everything): BFS base.
            attach_bfs(g, &in_cluster, center, parent);
            return;
        }
    }
}

/// Claim all unassigned in-cluster nodes within `h` hops of `c`.
fn claim_ball(
    g: &Graph,
    in_cluster: &[bool],
    assigned: &mut [bool],
    c: NodeId,
    h: u32,
) -> Vec<NodeId> {
    let mut members = Vec::new();
    let mut dist = std::collections::HashMap::new();
    let mut q = std::collections::VecDeque::new();
    dist.insert(c, 0u32);
    q.push_back(c);
    while let Some(u) = q.pop_front() {
        let du = dist[&u];
        if !assigned[u as usize] {
            assigned[u as usize] = true;
            members.push(u);
        }
        if du >= h {
            continue;
        }
        for &w in g.neighbors(u) {
            if in_cluster[w as usize] && !assigned[w as usize] && !dist.contains_key(&w) {
                dist.insert(w, du + 1);
                q.push_back(w);
            }
        }
    }
    members
}

/// Attach each sub-center to the main center along a BFS path within the
/// cluster, writing parent pointers along the way for nodes still
/// unattached.
fn attach_centers(
    g: &Graph,
    in_cluster: &[bool],
    center: NodeId,
    clusters: &[(NodeId, Vec<NodeId>)],
    parent: &mut [NodeId],
) {
    // BFS tree of the whole cluster from the center.
    let mut pre = vec![NodeId::MAX; g.node_count()];
    let mut q = std::collections::VecDeque::new();
    pre[center as usize] = center;
    q.push_back(center);
    while let Some(u) = q.pop_front() {
        for &w in g.neighbors(u) {
            if in_cluster[w as usize] && pre[w as usize] == NodeId::MAX {
                pre[w as usize] = u;
                q.push_back(w);
            }
        }
    }
    for &(c, _) in clusters {
        // Walk the BFS path from c to the center, setting parents for any
        // node not yet in the tree.
        let mut v = c;
        while v != center && parent[v as usize] == NodeId::MAX {
            let p = pre[v as usize];
            if p == NodeId::MAX {
                break; // disconnected fragment
            }
            parent[v as usize] = p;
            v = p;
        }
    }
}

/// BFS-tree attach of every unattached node in the cluster.
fn attach_bfs(g: &Graph, in_cluster: &[bool], center: NodeId, parent: &mut [NodeId]) {
    let mut q = std::collections::VecDeque::new();
    let mut seen = vec![false; g.node_count()];
    seen[center as usize] = true;
    q.push_back(center);
    while let Some(u) = q.pop_front() {
        for &w in g.neighbors(u) {
            if in_cluster[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                if parent[w as usize] == NodeId::MAX {
                    parent[w as usize] = u;
                }
                q.push_back(w);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balls::{sample_centers, PlainBalls};
    use topogen_generators::canonical::{kary_tree, mesh, random_gnp, ring};
    use topogen_graph::components::largest_component;

    fn params() -> DistortionParams {
        DistortionParams {
            max_ball_nodes: 2_000,
            use_bartal: true,
            polish: false,
            seed: 2,
        }
    }

    #[test]
    fn tree_distortion_is_one() {
        let g = kary_tree(3, 5);
        let d = graph_distortion(&g, &params()).unwrap();
        assert!((d - 1.0).abs() < 1e-12, "tree distortion {d}");
    }

    #[test]
    fn ring_distortion() {
        // Best spanning tree of C_n is a path: distortion = (n-1+... )/n:
        // n-1 edges at distance 1, one edge at distance n-1 → (2n-2)/n.
        let g = ring(20);
        let d = graph_distortion(&g, &params()).unwrap();
        assert!((d - 38.0 / 20.0).abs() < 1e-9, "ring distortion {d}");
    }

    #[test]
    fn mesh_distortion_grows_with_size() {
        let small = graph_distortion(&mesh(6, 6), &params()).unwrap();
        let large = graph_distortion(&mesh(20, 20), &params()).unwrap();
        assert!(large > small, "mesh distortion {small} → {large}");
        assert!(large > 2.5, "large mesh distortion {large}");
    }

    #[test]
    fn random_graph_distortion_loglike() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let g = random_gnp(400, 0.02, &mut rng);
        let (lcc, _) = largest_component(&g);
        let d = graph_distortion(&lcc, &params()).unwrap();
        assert!(d > 2.0, "random distortion {d}");
        assert!(d < 10.0);
    }

    #[test]
    fn distortion_curve_on_tree_flat_at_one() {
        let g = kary_tree(2, 7);
        let src = PlainBalls { graph: &g };
        use rand::SeedableRng;
        let centers = sample_centers(g.node_count(), 10, &mut StdRng::seed_from_u64(5));
        let curve = distortion_curve(&src, &centers, 8, &params());
        for p in curve.iter().filter(|p| p.value.is_finite()) {
            assert!(
                (p.value - 1.0).abs() < 1e-9,
                "D({}) = {}",
                p.avg_size,
                p.value
            );
        }
    }

    #[test]
    fn bartal_tree_is_spanning() {
        use rand::SeedableRng;
        let g = mesh(8, 8);
        let t = bartal_tree(&g, &mut StdRng::seed_from_u64(3));
        assert_eq!(t.size(), 64);
        // Valid distortion computable.
        let d = distortion_of_tree(&g, &t).unwrap();
        assert!(d >= 1.0);
    }

    #[test]
    fn bartal_tree_on_random_graph() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(17);
        let g = random_gnp(200, 0.04, &mut rng);
        let (lcc, _) = largest_component(&g);
        let t = bartal_tree(&lcc, &mut rng);
        assert_eq!(t.size(), lcc.node_count());
    }

    #[test]
    fn edgeless_graph_none() {
        let g = Graph::empty(4);
        assert!(graph_distortion(&g, &params()).is_none());
    }

    #[test]
    fn mesh_vs_tree_distinguished() {
        // The headline qualitative distinction of Figure 2(c).
        let t = graph_distortion(&kary_tree(3, 5), &params()).unwrap();
        let m = graph_distortion(&mesh(18, 18), &params()).unwrap();
        assert!(m > 2.0 * t, "mesh {m} vs tree {t}");
    }
}
