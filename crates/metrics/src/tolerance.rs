//! Attack and error tolerance (Appendix B, Figure 9; after Albert, Jeong,
//! Barabási \[3\]).
//!
//! Remove a fraction `f` of nodes — in decreasing-degree order (*attack*)
//! or uniformly at random (*error*) — and measure the average pairwise
//! shortest-path length within the largest remaining component. Power-law
//! graphs are famously robust to error but fragile to attack ("peaked
//! attack tolerance": path lengths blow up, then the network shatters and
//! the largest component's internal distances fall again).

use rand::seq::SliceRandom;
use rand::Rng;
use topogen_graph::bfs::average_path_length;
use topogen_graph::components::largest_component;
use topogen_graph::subgraph::induced_subgraph;
use topogen_graph::{Graph, NodeId};
use topogen_par::par_map;

/// Removal strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Removal {
    /// Remove nodes in decreasing degree order (degrees taken on the
    /// original graph, as in \[3\]).
    Attack,
    /// Remove uniformly random nodes.
    Error,
}

/// One point of a tolerance curve.
#[derive(Clone, Copy, Debug)]
pub struct TolerancePoint {
    /// Fraction of nodes removed.
    pub fraction: f64,
    /// Average shortest-path length within the largest remaining
    /// component (NaN if it has < 2 nodes).
    pub avg_path_length: f64,
    /// Size of the largest remaining component.
    pub largest_component: usize,
}

/// Tolerance curve: for each `f` in `fractions`, remove that share of
/// nodes per `mode` and measure the largest component's average path
/// length (estimated from up to `path_samples` BFS sources).
pub fn tolerance_curve<R: Rng>(
    g: &Graph,
    mode: Removal,
    fractions: &[f64],
    path_samples: usize,
    rng: &mut R,
) -> Vec<TolerancePoint> {
    let n = g.node_count();
    // Fixed removal order so that f2 > f1 removes a superset.
    let order: Vec<NodeId> = match mode {
        Removal::Attack => {
            let mut v: Vec<NodeId> = (0..n as NodeId).collect();
            v.sort_by_key(|&x| (std::cmp::Reverse(g.degree(x)), x));
            v
        }
        Removal::Error => {
            let mut v: Vec<NodeId> = (0..n as NodeId).collect();
            v.shuffle(rng);
            v
        }
    };
    let seeds: Vec<u64> = (0..fractions.len() as u64).collect();
    let points: Vec<TolerancePoint> = par_map(&seeds, |&i| {
        let f = fractions[i as usize];
        let k = ((f * n as f64).round() as usize).min(n);
        let removed: std::collections::HashSet<NodeId> = order[..k].iter().copied().collect();
        let keep: Vec<NodeId> = (0..n as NodeId).filter(|v| !removed.contains(v)).collect();
        let (sub, _) = induced_subgraph(g, &keep);
        let (lcc, _) = largest_component(&sub);
        let m = lcc.node_count();
        let apl = if m >= 2 {
            // Deterministic sample of BFS sources.
            let step = (m / path_samples.max(1)).max(1);
            let sources: Vec<NodeId> = (0..m as NodeId).step_by(step).collect();
            average_path_length(&lcc, &sources).unwrap_or(f64::NAN)
        } else {
            f64::NAN
        };
        TolerancePoint {
            fraction: f,
            avg_path_length: apl,
            largest_component: m,
        }
    });
    points
}

/// The standard fraction grid of Figure 9: 0 to 0.2 in steps of 0.02.
pub fn standard_fractions() -> Vec<f64> {
    (0..=10).map(|i| i as f64 * 0.02).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_generators::canonical::{mesh, random_gnp};
    use topogen_generators::plrg::{plrg, PlrgParams};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(66)
    }

    #[test]
    fn zero_removal_baseline() {
        let g = mesh(10, 10);
        let pts = tolerance_curve(&g, Removal::Error, &[0.0], 20, &mut rng());
        assert_eq!(pts[0].largest_component, 100);
        assert!(pts[0].avg_path_length > 5.0);
    }

    #[test]
    fn attack_shrinks_component_faster_than_error() {
        // The Albert et al. signature on power-law graphs.
        let g = {
            let raw = plrg(
                &PlrgParams {
                    n: 2000,
                    alpha: 2.2,
                    max_degree: None,
                },
                &mut rng(),
            );
            topogen_graph::components::largest_component(&raw).0
        };
        let f = [0.1];
        let atk = tolerance_curve(&g, Removal::Attack, &f, 10, &mut rng());
        let err = tolerance_curve(&g, Removal::Error, &f, 10, &mut rng());
        assert!(
            atk[0].largest_component < err[0].largest_component,
            "attack {} vs error {}",
            atk[0].largest_component,
            err[0].largest_component
        );
    }

    #[test]
    fn error_tolerance_gentle_on_random_graph() {
        let g = {
            let raw = random_gnp(800, 0.01, &mut rng());
            topogen_graph::components::largest_component(&raw).0
        };
        let pts = tolerance_curve(&g, Removal::Error, &[0.0, 0.1], 10, &mut rng());
        // Random graphs degrade smoothly: path length changes < 50%.
        let ratio = pts[1].avg_path_length / pts[0].avg_path_length;
        assert!((0.8..1.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn monotone_component_shrink() {
        let g = mesh(12, 12);
        let fr = [0.0, 0.05, 0.1, 0.2];
        let pts = tolerance_curve(&g, Removal::Attack, &fr, 10, &mut rng());
        assert!(pts
            .windows(2)
            .all(|w| w[1].largest_component <= w[0].largest_component));
    }

    #[test]
    fn full_removal_degenerates() {
        let g = mesh(4, 4);
        let pts = tolerance_curve(&g, Removal::Error, &[1.0], 5, &mut rng());
        assert_eq!(pts[0].largest_component, 0);
        assert!(pts[0].avg_path_length.is_nan());
    }

    #[test]
    fn standard_grid() {
        let f = standard_fractions();
        assert_eq!(f.len(), 11);
        assert_eq!(f[0], 0.0);
        assert!((f[10] - 0.2).abs() < 1e-12);
    }
}
