//! Minimal parallel map over crossbeam scoped threads.
//!
//! The per-center loops of the ball-growing metrics are embarrassingly
//! parallel and CPU-bound, so plain scoped threads with a shared atomic
//! work index are all we need (per the Tokio guide's own advice, an async
//! runtime buys nothing here).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item, in parallel across up to
/// `available_parallelism` threads, preserving input order in the output.
/// Falls back to a sequential loop for small inputs.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items.len().max(1));
    if threads <= 1 || items.len() < 4 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *results[i].lock().unwrap() = Some(r);
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = par_map(&[] as &[i32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn small_input_sequential_path() {
        let out = par_map(&[1, 2, 3], |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn heavy_work_all_items_processed() {
        let items: Vec<u64> = (0..50).collect();
        let out = par_map(&items, |&x| (0..1000).fold(x, |a, b| a.wrapping_add(b)));
        assert_eq!(out.len(), 50);
        assert_eq!(out[0], (0..1000).sum::<u64>());
    }
}
