//! Clustering coefficients (Figure 10; after Watts–Strogatz \[46\], used
//! by Bu–Towsley \[8\] to distinguish degree-based generators).
//!
//! The clustering coefficient of a node with degree ≥ 2 is the fraction
//! of its neighbor pairs that are themselves adjacent; a graph's
//! coefficient is the average over such nodes. The paper computes it both
//! with ball-growing (where PLRG tracks the AS graph) and on the whole
//! graph (where it does not — "PLRG … may not capture the local
//! properties", §4.4).

use crate::balls::{ball_curve, BallSource};
use crate::CurvePoint;
use topogen_graph::{Graph, NodeId};

/// Clustering coefficient of one node (`None` when degree < 2).
pub fn node_clustering(g: &Graph, v: NodeId) -> Option<f64> {
    let neigh = g.neighbors(v);
    let d = neigh.len();
    if d < 2 {
        return None;
    }
    let mut links = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if g.has_edge(neigh[i], neigh[j]) {
                links += 1;
            }
        }
    }
    Some(2.0 * links as f64 / (d * (d - 1)) as f64)
}

/// Average clustering coefficient over all nodes of degree ≥ 2 (`None`
/// if no such node exists).
pub fn graph_clustering(g: &Graph) -> Option<f64> {
    let vals: Vec<f64> = (0..g.node_count() as NodeId)
        .filter_map(|v| node_clustering(g, v))
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

/// Clustering as a ball-growing curve (Figure 10).
pub fn clustering_curve<S: BallSource>(
    source: &S,
    centers: &[NodeId],
    max_h: u32,
    max_ball_nodes: usize,
) -> Vec<CurvePoint> {
    ball_curve(source, centers, max_h, |g| {
        if g.node_count() > max_ball_nodes {
            return None;
        }
        graph_clustering(g)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_generators::canonical::{complete, kary_tree, mesh, ring};

    #[test]
    fn complete_graph_fully_clustered() {
        let g = complete(6);
        assert_eq!(graph_clustering(&g), Some(1.0));
        assert_eq!(node_clustering(&g, 0), Some(1.0));
    }

    #[test]
    fn tree_zero_clustering() {
        let g = kary_tree(3, 4);
        assert_eq!(graph_clustering(&g), Some(0.0));
    }

    #[test]
    fn ring_zero_mesh_zero() {
        assert_eq!(graph_clustering(&ring(10)), Some(0.0));
        assert_eq!(graph_clustering(&mesh(5, 5)), Some(0.0));
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 plus tail 2-3: nodes 0,1 have C=1; node 2 has
        // C = 1/3; node 3 degree 1 excluded. Average = (1+1+1/3)/3.
        let g = Graph::from_edges(4, vec![(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = graph_clustering(&g).unwrap();
        assert!((c - (2.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
        assert_eq!(node_clustering(&g, 3), None);
    }

    #[test]
    fn degree_one_only_graph() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        assert_eq!(graph_clustering(&g), None);
    }

    #[test]
    fn clustering_curve_on_clique() {
        use crate::balls::PlainBalls;
        let g = complete(8);
        let src = PlainBalls { graph: &g };
        let c = clustering_curve(&src, &[0], 1, 100);
        assert_eq!(c[1].value, 1.0);
        assert!(c[0].value.is_nan()); // single-node ball has no C
    }
}
