//! The shared ball-source abstraction.
//!
//! Every per-ball metric runs over subgraphs produced by some notion of a
//! "ball of radius h around a center". The paper uses two: plain
//! shortest-path balls, and — for the measured AS/RL graphs —
//! *policy-induced* balls (Appendix E). [`BallSource`] abstracts over
//! both so metric code is written once.

use crate::CurvePoint;
use rand::seq::SliceRandom;
use rand::Rng;
use topogen_graph::subgraph::{ball, SubgraphMap};
use topogen_graph::{bfs, Graph, NodeId};
use topogen_par::par_map;
use topogen_policy::balls::policy_ball_from_dag;
use topogen_policy::rel::AsAnnotations;
use topogen_policy::valley::policy_shortest_path_dag;

/// A source of ball subgraphs over some underlying topology.
pub trait BallSource: Sync {
    /// The underlying node count (for sampling centers).
    fn node_count(&self) -> usize;

    /// All balls of radii `0..=max_h` around `center`, cheapest computed
    /// together (one BFS serves every radius).
    fn balls_up_to(&self, center: NodeId, max_h: u32) -> Vec<(Graph, SubgraphMap)>;

    /// Distance field from `center` under this source's path notion.
    fn distances(&self, center: NodeId) -> Vec<u32>;

    /// The underlying plain graph, when this source's balls are plain
    /// shortest-path balls over it — the precondition for the batched
    /// bitset kernels. Policy/overlay sources return `None` (their path
    /// notion is not plain BFS) and always take the scalar path.
    fn plain_graph(&self) -> Option<&Graph> {
        None
    }
}

/// Plain shortest-path balls over a graph.
pub struct PlainBalls<'a> {
    /// The underlying graph.
    pub graph: &'a Graph,
}

impl<'a> BallSource for PlainBalls<'a> {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn balls_up_to(&self, center: NodeId, max_h: u32) -> Vec<(Graph, SubgraphMap)> {
        (0..=max_h).map(|h| ball(self.graph, center, h)).collect()
    }

    fn distances(&self, center: NodeId) -> Vec<u32> {
        bfs::distances(self.graph, center)
    }

    fn plain_graph(&self) -> Option<&Graph> {
        Some(self.graph)
    }
}

/// Policy-induced balls over an annotated AS graph (Appendix E).
pub struct PolicyBalls<'a> {
    /// The AS graph.
    pub graph: &'a Graph,
    /// Relationship annotations.
    pub annotations: &'a AsAnnotations,
}

impl<'a> BallSource for PolicyBalls<'a> {
    fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    fn balls_up_to(&self, center: NodeId, max_h: u32) -> Vec<(Graph, SubgraphMap)> {
        let dag = policy_shortest_path_dag(self.graph, self.annotations, center);
        (0..=max_h)
            .map(|h| policy_ball_from_dag(self.graph, &dag, h))
            .collect()
    }

    fn distances(&self, center: NodeId) -> Vec<u32> {
        let dag = policy_shortest_path_dag(self.graph, self.annotations, center);
        dag.node_dist
    }
}

/// Policy-constrained router-level balls through an AS overlay — the
/// paper's RL(Policy) series (Appendix E's two-step construction).
pub struct OverlayBalls<'a> {
    /// The router-level overlay (router graph + AS graph + annotations).
    pub overlay: topogen_policy::overlay::RouterOverlay<'a>,
}

impl<'a> BallSource for OverlayBalls<'a> {
    fn node_count(&self) -> usize {
        self.overlay.routers.node_count()
    }

    fn balls_up_to(&self, center: NodeId, max_h: u32) -> Vec<(Graph, SubgraphMap)> {
        let dist = self.overlay.policy_router_distances(center);
        (0..=max_h)
            .map(|h| self.overlay.policy_router_ball_from_dist(&dist, h))
            .collect()
    }

    fn distances(&self, center: NodeId) -> Vec<u32> {
        self.overlay.policy_router_distances(center)
    }
}

/// Choose up to `k` ball centers uniformly without replacement (the
/// paper: "for larger subgraphs, we repeated the computation for \[a\]
/// sufficiently large number of randomly chosen nodes, in order to keep
/// computation times reasonable").
pub fn sample_centers<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<NodeId> {
    if k >= n {
        return (0..n as NodeId).collect();
    }
    if n > FLOYD_THRESHOLD {
        return sample_centers_floyd(n, k, rng);
    }
    let mut all: Vec<NodeId> = (0..n as NodeId).collect();
    all.shuffle(rng);
    all.truncate(k);
    all.sort_unstable();
    all
}

/// Above this node count, center sampling switches from the O(n)
/// shuffle-and-truncate to Floyd's O(k) algorithm. Every tier with
/// archived outputs sits far below the threshold, so their center sets
/// (and everything downstream) stay byte-identical; the million-node
/// tier stops materializing and shuffling a 4 MB id vector per suite
/// cell just to keep 8 of them.
const FLOYD_THRESHOLD: usize = 100_000;

/// Floyd's sampling: k distinct ids from `0..n` in O(k) time and space.
/// The distinctness guarantee is structural — each iteration inserts
/// exactly one id not yet in the set — not probabilistic.
fn sample_centers_floyd<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<NodeId> {
    let mut picked = std::collections::HashSet::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..j as u64 + 1) as NodeId;
        if !picked.insert(t) {
            picked.insert(j as NodeId);
        }
    }
    let mut out: Vec<NodeId> = picked.into_iter().collect();
    out.sort_unstable();
    out
}

/// Run a per-ball metric over sampled centers and radii `0..=max_h`,
/// averaging size and value per radius — one curve in the style of the
/// paper's Figure 2(b,c,e,f,h,i).
///
/// `metric` maps a ball subgraph to a value; balls for which it returns
/// `None` (e.g. too small to partition) are skipped.
pub fn ball_curve<S, F>(source: &S, centers: &[NodeId], max_h: u32, metric: F) -> Vec<CurvePoint>
where
    S: BallSource,
    F: Fn(&Graph) -> Option<f64> + Sync,
{
    let per_center: Vec<Vec<(f64, f64)>> = par_map(centers, |&c| {
        source
            .balls_up_to(c, max_h)
            .into_iter()
            .map(|(g, _)| {
                let v = metric(&g);
                (g.node_count() as f64, v.unwrap_or(f64::NAN))
            })
            .collect()
    });
    (0..=max_h)
        .map(|h| {
            // Pair sizes with values: a ball that yields no value (too
            // small / too large for the metric) contributes to neither,
            // so R(n)-style plots relate consistent (n, value) averages.
            let mut size_sum = 0.0;
            let mut val_sum = 0.0;
            let mut val_n = 0usize;
            for row in &per_center {
                if let Some(&(s, v)) = row.get(h as usize) {
                    if v.is_finite() {
                        size_sum += s;
                        val_sum += v;
                        val_n += 1;
                    }
                }
            }
            CurvePoint {
                radius: h,
                avg_size: if val_n > 0 {
                    size_sum / val_n as f64
                } else {
                    0.0
                },
                value: if val_n > 0 {
                    val_sum / val_n as f64
                } else {
                    f64::NAN
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_policy::rel::annotations_from_pairs;

    fn path5() -> Graph {
        Graph::from_edges(5, (0..4).map(|i| (i, i + 1)))
    }

    #[test]
    fn plain_balls_radii() {
        let g = path5();
        let src = PlainBalls { graph: &g };
        let balls = src.balls_up_to(2, 2);
        assert_eq!(balls.len(), 3);
        assert_eq!(balls[0].0.node_count(), 1);
        assert_eq!(balls[1].0.node_count(), 3);
        assert_eq!(balls[2].0.node_count(), 5);
    }

    #[test]
    fn policy_balls_respect_valleys() {
        // 0 prov 1 ← prov 2: node 2 invisible from 0 at any radius.
        let g = Graph::from_edges(3, vec![(0, 1), (1, 2)]);
        let ann = annotations_from_pairs(&g, &[(0, 1), (2, 1)], &[], &[]);
        let src = PolicyBalls {
            graph: &g,
            annotations: &ann,
        };
        let balls = src.balls_up_to(0, 5);
        assert_eq!(balls.last().unwrap().0.node_count(), 2);
    }

    #[test]
    fn sample_centers_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(sample_centers(10, 20, &mut rng).len(), 10);
        let s = sample_centers(100, 7, &mut rng);
        assert_eq!(s.len(), 7);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_centers_distinct_and_in_range_above_floyd_threshold() {
        // The O(k) Floyd path kicks in above 100k nodes; distinctness
        // must be structural, not probabilistic, and unbiased enough
        // that repeated draws differ. Strictly-ascending output implies
        // no duplicates.
        for seed in [1u64, 7, 42, 1234] {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 1_000_000usize;
            let s = sample_centers(n, 64, &mut rng);
            assert_eq!(s.len(), 64, "seed {seed}");
            assert!(s.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
            assert!(s.iter().all(|&c| (c as usize) < n), "seed {seed}");
            // Same seed → same sample; different seed → different sample.
            let again = sample_centers(n, 64, &mut StdRng::seed_from_u64(seed));
            assert_eq!(s, again);
        }
        let a = sample_centers(1_000_000, 64, &mut StdRng::seed_from_u64(1));
        let b = sample_centers(1_000_000, 64, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn ball_curve_counts_edges() {
        // Metric = edge count; on the path graph from every center.
        let g = path5();
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = (0..5).collect();
        let curve = ball_curve(&src, &centers, 1, |b| Some(b.edge_count() as f64));
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].value, 0.0);
        // Radius 1 around ends: 1 edge; around middle: 2 edges → avg 8/5.
        assert!((curve[1].value - 8.0 / 5.0).abs() < 1e-12);
        assert!((curve[1].avg_size - (2.0 + 3.0 + 3.0 + 3.0 + 2.0) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn ball_curve_skips_none_values() {
        let g = path5();
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = (0..5).collect();
        // Metric undefined for balls with < 3 nodes.
        let curve = ball_curve(&src, &centers, 1, |b| {
            if b.node_count() >= 3 {
                Some(1.0)
            } else {
                None
            }
        });
        assert!(curve[0].value.is_nan());
        assert_eq!(curve[1].value, 1.0); // only middle balls counted
    }
}
