//! The paper's "additional metrics ... of our own devising" (footnote
//! 22): the average path length between any two nodes in a ball of size
//! n, and the expected max-flow between the center of a ball and nodes
//! on its surface. The paper reports both were consistent with — but not
//! more discriminating than — the three basic metrics; we include them
//! for completeness and as cross-checks.

use crate::balls::BallSource;
use crate::CurvePoint;
use topogen_graph::bfs::{average_path_length, distances};
use topogen_graph::flow::max_flow_unit;
use topogen_graph::{Graph, NodeId, UNREACHED};
use topogen_par::par_map;

/// Average pairwise path length inside balls, as a ball-growing curve.
/// Exact on each ball (BFS from every ball node).
pub fn ball_path_length_curve<S: BallSource>(
    source: &S,
    centers: &[NodeId],
    max_h: u32,
    max_ball_nodes: usize,
) -> Vec<CurvePoint> {
    crate::balls::ball_curve(source, centers, max_h, |g| {
        if g.node_count() < 2 || g.node_count() > max_ball_nodes {
            return None;
        }
        let nodes: Vec<NodeId> = g.nodes().collect();
        average_path_length(g, &nodes)
    })
}

/// Expected center→surface max flow: for each ball, the mean unit max
/// flow from the ball's center (subgraph node 0) to sampled nodes at the
/// maximum distance from it (the ball's "surface").
pub fn center_surface_flow_curve<S: BallSource>(
    source: &S,
    centers: &[NodeId],
    max_h: u32,
    max_ball_nodes: usize,
    surface_samples: usize,
) -> Vec<CurvePoint> {
    let per_center: Vec<Vec<(f64, f64)>> = par_map(centers, |&c| {
        source
            .balls_up_to(c, max_h)
            .into_iter()
            .map(|(g, _)| {
                let v = ball_surface_flow(&g, max_ball_nodes, surface_samples);
                (g.node_count() as f64, v.unwrap_or(f64::NAN))
            })
            .collect()
    });
    (0..=max_h)
        .map(|h| {
            let mut size_sum = 0.0;
            let mut val_sum = 0.0;
            let mut n = 0usize;
            for row in &per_center {
                if let Some(&(s, v)) = row.get(h as usize) {
                    if v.is_finite() {
                        size_sum += s;
                        val_sum += v;
                        n += 1;
                    }
                }
            }
            CurvePoint {
                radius: h,
                avg_size: if n > 0 { size_sum / n as f64 } else { 0.0 },
                value: if n > 0 { val_sum / n as f64 } else { f64::NAN },
            }
        })
        .collect()
}

/// Mean unit max-flow from ball node 0 (the center by construction of
/// [`topogen_graph::subgraph::ball`]) to up to `samples` surface nodes.
fn ball_surface_flow(g: &Graph, max_ball_nodes: usize, samples: usize) -> Option<f64> {
    let n = g.node_count();
    if n < 2 || n > max_ball_nodes {
        return None;
    }
    let d = distances(g, 0);
    let maxd = d.iter().filter(|&&x| x != UNREACHED).max().copied()?;
    if maxd == 0 {
        return None;
    }
    let surface: Vec<NodeId> = (0..n as NodeId)
        .filter(|&v| d[v as usize] == maxd)
        .collect();
    let step = (surface.len() / samples.max(1)).max(1);
    let picked: Vec<NodeId> = surface.iter().step_by(step).copied().collect();
    if picked.is_empty() {
        return None;
    }
    let total: u64 = picked.iter().map(|&t| max_flow_unit(g, 0, t)).sum();
    Some(total as f64 / picked.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balls::PlainBalls;
    use topogen_generators::canonical::{kary_tree, mesh, ring};

    #[test]
    fn path_length_curve_on_ring() {
        let g = ring(12);
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = vec![0, 6];
        let c = ball_path_length_curve(&src, &centers, 6, 1000);
        // Radius-1 balls are 3-node paths: APL = (1+1+2+2+1+1)/6 = 4/3.
        assert!((c[1].value - 4.0 / 3.0).abs() < 1e-9);
        // Radius 6 closes the cycle: APL of C12 = 36/11 (per node the
        // distances 1,1,2,2,…,5,5,6 sum to 36 over 11 pairs). Note the
        // value *drops* from the radius-5 path's — ball APL need not be
        // monotone.
        assert!(
            (c[6].value - 36.0 / 11.0).abs() < 1e-9,
            "C12 APL {}",
            c[6].value
        );
    }

    #[test]
    fn tree_surface_flow_is_one() {
        let g = kary_tree(3, 4);
        let src = PlainBalls { graph: &g };
        let c = center_surface_flow_curve(&src, &[0], 4, 1000, 6);
        for p in c.iter().filter(|p| p.value.is_finite()) {
            assert!((p.value - 1.0).abs() < 1e-9, "tree flow {}", p.value);
        }
    }

    #[test]
    fn mesh_surface_flow_exceeds_tree() {
        let g = mesh(9, 9);
        let src = PlainBalls { graph: &g };
        let c = center_surface_flow_curve(&src, &[40], 4, 1000, 6);
        // Some surface nodes sit in degree-2 pockets of the ball, so the
        // average lands between 1 and 2 — still clearly above the
        // tree's 1.0.
        let last = c.iter().rev().find(|p| p.value.is_finite()).unwrap();
        assert!(last.value > 1.2, "mesh flow {}", last.value);
    }

    #[test]
    fn degenerate_balls_skipped() {
        let g = kary_tree(2, 2);
        let src = PlainBalls { graph: &g };
        let c = center_surface_flow_curve(&src, &[0], 0, 1000, 4);
        assert!(c[0].value.is_nan());
    }
}
