//! Balanced graph bisection for the resilience metric.
//!
//! The paper defines resilience through "the minimum cut-set size for a
//! balanced bi-partition of a graph" and notes the problem is NP-hard,
//! using "the well-tested heuristics described in [Karypis–Kumar]". We
//! implement the same multilevel recipe:
//!
//! 1. **Coarsen** by heavy-edge matching until the graph is small,
//!    carrying node weights (merged node counts) and edge weights
//!    (merged multiplicities);
//! 2. **Initial partition** of the coarsest graph by greedy BFS region
//!    growing from a random seed to half the total weight;
//! 3. **Refine** while uncoarsening with Fiduccia–Mattheyses-style
//!    single-node moves under a balance constraint.
//!
//! Several random starts are taken and the best (smallest) balanced cut
//! returned. Balance tolerance is ±10% of half the weight, matching the
//! paper's "approximately n/2 nodes".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use topogen_graph::Graph;

/// A weighted working graph used during coarsening.
#[derive(Clone, Debug)]
struct WGraph {
    /// adjacency: per node, (neighbor, edge weight).
    adj: Vec<Vec<(u32, u64)>>,
    /// node weights (number of original nodes merged).
    wnode: Vec<u64>,
}

impl WGraph {
    fn from_graph(g: &Graph) -> WGraph {
        let n = g.node_count();
        let mut adj = vec![Vec::new(); n];
        for e in g.edges() {
            adj[e.a as usize].push((e.b, 1));
            adj[e.b as usize].push((e.a, 1));
        }
        WGraph {
            adj,
            wnode: vec![1; n],
        }
    }

    fn n(&self) -> usize {
        self.wnode.len()
    }

    fn total_weight(&self) -> u64 {
        self.wnode.iter().sum()
    }
}

/// Result of a bisection.
#[derive(Clone, Debug)]
pub struct Bisection {
    /// Cut size (number of original edges crossing the partition).
    pub cut: u64,
    /// Side of each node (false/true).
    pub side: Vec<bool>,
}

/// Minimum balanced-bisection cut of `g` (heuristic): best of
/// `restarts` multilevel runs. Returns `None` for graphs with fewer than
/// 2 nodes. `seed` makes the heuristic deterministic.
pub fn min_balanced_bisection(g: &Graph, restarts: usize, seed: u64) -> Option<Bisection> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let mut best: Option<Bisection> = None;
    for r in 0..restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(r as u64).wrapping_mul(0x9E3779B9));
        let cand = multilevel_once(g, &mut rng);
        if best.as_ref().is_none_or(|b| cand.cut < b.cut) {
            best = Some(cand);
        }
    }
    best
}

/// Convenience: just the cut value.
pub fn min_balanced_cut(g: &Graph, restarts: usize, seed: u64) -> Option<u64> {
    min_balanced_bisection(g, restarts, seed).map(|b| b.cut)
}

fn multilevel_once<R: Rng>(g: &Graph, rng: &mut R) -> Bisection {
    // Build the level stack.
    let mut levels: Vec<WGraph> = vec![WGraph::from_graph(g)];
    let mut maps: Vec<Vec<u32>> = Vec::new(); // maps[l][v_fine] = v_coarse
    while levels.last().unwrap().n() > 32 {
        let (coarse, map) = coarsen(levels.last().unwrap(), rng);
        // Stop if coarsening stalls (e.g. a star collapses slowly).
        if coarse.n() as f64 > 0.95 * levels.last().unwrap().n() as f64 {
            break;
        }
        levels.push(coarse);
        maps.push(map);
    }
    // Initial partition on the coarsest level.
    // Initial partition on the coarsest level: grow a region from both a
    // random start (suits bushy graphs, where refinement cleans the
    // frontier) and a pseudo-peripheral one (suits elongated graphs,
    // where it leaves one boundary instead of two and single-node moves
    // can never merge them), keeping whichever refines to a smaller cut.
    // The coarsest graph is tiny, so trying both is nearly free.
    let coarsest = levels.last().unwrap();
    let mut side = {
        let mut a = initial_partition(coarsest, rng, false);
        refine(coarsest, &mut a, rng);
        let mut b = initial_partition(coarsest, rng, true);
        refine(coarsest, &mut b, rng);
        if cut_size(coarsest, &a) <= cut_size(coarsest, &b) {
            a
        } else {
            b
        }
    };
    // Uncoarsen with refinement.
    for l in (0..maps.len()).rev() {
        let fine = &levels[l];
        let map = &maps[l];
        let mut fine_side = vec![false; fine.n()];
        for v in 0..fine.n() {
            fine_side[v] = side[map[v] as usize];
        }
        side = fine_side;
        refine(fine, &mut side, rng);
    }
    let cut = cut_size(&levels[0], &side);
    Bisection { cut, side }
}

/// Heavy-edge matching coarsening.
fn coarsen<R: Rng>(g: &WGraph, rng: &mut R) -> (WGraph, Vec<u32>) {
    let n = g.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut matched = vec![u32::MAX; n];
    let mut coarse_id = vec![u32::MAX; n];
    let mut next = 0u32;
    for &v in &order {
        if matched[v as usize] != u32::MAX {
            continue;
        }
        // Heaviest-edge unmatched neighbor.
        let mut bestw = 0u64;
        let mut bestu = u32::MAX;
        for &(u, w) in &g.adj[v as usize] {
            if matched[u as usize] == u32::MAX && u != v && w > bestw {
                bestw = w;
                bestu = u;
            }
        }
        if bestu != u32::MAX {
            matched[v as usize] = bestu;
            matched[bestu as usize] = v;
            coarse_id[v as usize] = next;
            coarse_id[bestu as usize] = next;
        } else {
            matched[v as usize] = v;
            coarse_id[v as usize] = next;
        }
        next += 1;
    }
    // Build the coarse graph.
    let cn = next as usize;
    let mut wnode = vec![0u64; cn];
    for v in 0..n {
        wnode[coarse_id[v] as usize] += g.wnode[v];
    }
    let mut edge_acc: std::collections::BTreeMap<(u32, u32), u64> = Default::default();
    for v in 0..n {
        let cv = coarse_id[v];
        for &(u, w) in &g.adj[v] {
            let cu = coarse_id[u as usize];
            if cu == cv {
                continue;
            }
            // Count each direction once (v < u).
            if (v as u32) < u {
                let key = (cv.min(cu), cv.max(cu));
                *edge_acc.entry(key).or_insert(0) += w;
            }
        }
    }
    let mut adj = vec![Vec::new(); cn];
    for ((a, b), w) in edge_acc {
        adj[a as usize].push((b, w));
        adj[b as usize].push((a, w));
    }
    (WGraph { adj, wnode }, coarse_id)
}

/// Farthest node from `from` by BFS (a pseudo-peripheral node when
/// `from` is random). Growing the region from the periphery leaves one
/// boundary instead of two on elongated graphs, where FM refinement
/// cannot help (every single-node move along a chain has gain ≤ 0).
fn farthest_from(g: &WGraph, from: usize) -> usize {
    let mut dist = vec![u32::MAX; g.n()];
    let mut q = std::collections::VecDeque::new();
    dist[from] = 0;
    q.push_back(from as u32);
    let mut last = from;
    while let Some(v) = q.pop_front() {
        last = v as usize;
        for &(u, _) in &g.adj[v as usize] {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                q.push_back(u);
            }
        }
    }
    last
}

/// Greedy BFS region growing to half the total weight, started from a
/// random node or (with `peripheral`) a pseudo-peripheral one.
fn initial_partition<R: Rng>(g: &WGraph, rng: &mut R, peripheral: bool) -> Vec<bool> {
    let n = g.n();
    let total = g.total_weight();
    let target = total / 2;
    let mut side = vec![false; n];
    let mut grown = 0u64;
    let mut start = rng.gen_range(0..n);
    if peripheral {
        start = farthest_from(g, start);
    }
    let mut q = std::collections::VecDeque::new();
    let mut seen = vec![false; n];
    q.push_back(start as u32);
    seen[start] = true;
    while let Some(v) = q.pop_front() {
        if grown >= target {
            break;
        }
        side[v as usize] = true;
        grown += g.wnode[v as usize];
        for &(u, _) in &g.adj[v as usize] {
            if !seen[u as usize] {
                seen[u as usize] = true;
                q.push_back(u);
            }
        }
        // If BFS exhausts a component, jump to an unseen node.
        if q.is_empty() && grown < target {
            if let Some(u) = (0..n).find(|&u| !seen[u]) {
                seen[u] = true;
                q.push_back(u as u32);
            }
        }
    }
    side
}

fn cut_size(g: &WGraph, side: &[bool]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.n() {
        for &(u, w) in &g.adj[v] {
            if (v as u32) < u && side[v] != side[u as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// FM-style refinement: passes of best single-node moves under the
/// balance constraint, accepting only improving passes.
fn refine<R: Rng>(g: &WGraph, side: &mut [bool], rng: &mut R) {
    let n = g.n();
    let total = g.total_weight();
    let half = total as f64 / 2.0;
    let tol = (0.1 * half).max(1.0);
    let weight_true =
        |side: &[bool]| -> u64 { (0..n).filter(|&v| side[v]).map(|v| g.wnode[v]).sum() };
    let mut wt = weight_true(side);
    for _pass in 0..4 {
        let mut improved = false;
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        for &v in &order {
            let v = v as usize;
            // Gain of moving v to the other side.
            let mut internal = 0i64;
            let mut external = 0i64;
            for &(u, w) in &g.adj[v] {
                if side[u as usize] == side[v] {
                    internal += w as i64;
                } else {
                    external += w as i64;
                }
            }
            let gain = external - internal;
            if gain <= 0 {
                continue;
            }
            // Balance check after the move.
            let new_wt = if side[v] {
                wt - g.wnode[v]
            } else {
                wt + g.wnode[v]
            };
            // Never empty a side, and stay within the balance tolerance.
            if new_wt == 0 || new_wt == total || (new_wt as f64 - half).abs() > tol {
                continue;
            }
            side[v] = !side[v];
            wt = new_wt;
            improved = true;
        }
        if !improved {
            break;
        }
    }
    // Force balance if badly off (can happen on disconnected coarse
    // graphs): move lowest-degree nodes across until within tolerance.
    loop {
        let imbalance = wt as f64 - half;
        if imbalance.abs() <= tol.max(g.wnode.iter().copied().max().unwrap_or(1) as f64) {
            break;
        }
        let from_side = imbalance > 0.0;
        // Cheapest node to move: the one with minimal (internal-external).
        let mut best = None;
        let mut best_cost = i64::MAX;
        for v in 0..n {
            if side[v] != from_side {
                continue;
            }
            let mut cost = 0i64;
            for &(u, w) in &g.adj[v] {
                cost += if side[u as usize] == side[v] {
                    w as i64
                } else {
                    -(w as i64)
                };
            }
            if cost < best_cost {
                best_cost = cost;
                best = Some(v);
            }
        }
        match best {
            Some(v) => {
                let new_wt = if from_side {
                    wt - g.wnode[v]
                } else {
                    wt + g.wnode[v]
                };
                if new_wt == 0 || new_wt == total {
                    break;
                }
                side[v] = !side[v];
                wt = new_wt;
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_generators::canonical::{complete, kary_tree, linear, mesh, ring};

    fn balanced(side: &[bool]) -> bool {
        let t = side.iter().filter(|&&s| s).count();
        let n = side.len();
        // within 40–60%
        t * 10 >= n * 4 && t * 10 <= n * 6
    }

    #[test]
    fn tree_cut_is_one_ish() {
        let g = kary_tree(2, 7); // 255 nodes
        let b = min_balanced_bisection(&g, 4, 7).unwrap();
        assert!(b.cut <= 3, "tree balanced cut {}, expected ~1", b.cut);
        assert!(balanced(&b.side));
    }

    #[test]
    fn linear_chain_cut_one() {
        let g = linear(100);
        let b = min_balanced_bisection(&g, 4, 7).unwrap();
        assert_eq!(b.cut, 1);
        assert!(balanced(&b.side));
    }

    #[test]
    fn ring_cut_two() {
        let g = ring(64);
        let b = min_balanced_bisection(&g, 4, 7).unwrap();
        assert_eq!(b.cut, 2);
    }

    #[test]
    fn mesh_cut_near_sqrt_n() {
        let g = mesh(16, 16); // optimal balanced cut = 16
        let b = min_balanced_bisection(&g, 6, 7).unwrap();
        assert!(
            (16..=24).contains(&(b.cut as usize)),
            "mesh cut {} (optimal 16)",
            b.cut
        );
        assert!(balanced(&b.side));
    }

    #[test]
    fn complete_graph_cut_quadratic() {
        // Balanced cut of K16 is 8·8 = 64; the heuristic's tolerance
        // admits 7/9 (= 63) — both are "approximately n/2" per the paper.
        let g = complete(16);
        let b = min_balanced_bisection(&g, 4, 7).unwrap();
        assert!((63..=64).contains(&b.cut), "cut {}", b.cut);
    }

    #[test]
    fn random_graph_cut_scales_linearly() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = topogen_generators::canonical::random_gnp(400, 0.05, &mut rng);
        let b = min_balanced_bisection(&g, 4, 7).unwrap();
        // Expected cut ≈ m/2 ≈ n²p/4 = 2000; heuristic should land below
        // the random-split expectation but in the same order.
        assert!((800..2400).contains(&(b.cut as usize)), "cut {}", b.cut);
        assert!(balanced(&b.side));
    }

    #[test]
    fn two_cliques_bridge_cut_one() {
        // Two K10s joined by a single edge: the optimal balanced cut is 1.
        let mut edges = Vec::new();
        for i in 0..10u32 {
            for j in (i + 1)..10 {
                edges.push((i, j));
                edges.push((i + 10, j + 10));
            }
        }
        edges.push((0, 10));
        let g = Graph::from_edges(20, edges);
        let b = min_balanced_bisection(&g, 4, 7).unwrap();
        assert_eq!(b.cut, 1);
    }

    #[test]
    fn tiny_graphs() {
        assert!(min_balanced_bisection(&Graph::empty(0), 2, 1).is_none());
        assert!(min_balanced_bisection(&Graph::empty(1), 2, 1).is_none());
        let pair = Graph::from_edges(2, vec![(0, 1)]);
        let b = min_balanced_bisection(&pair, 2, 1).unwrap();
        assert_eq!(b.cut, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = mesh(10, 10);
        let a = min_balanced_cut(&g, 3, 42);
        let b = min_balanced_cut(&g, 3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn disconnected_graph_cut_zero() {
        // Two disjoint K5s: a balanced bipartition with no crossing edges.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
                edges.push((i + 5, j + 5));
            }
        }
        let g = Graph::from_edges(10, edges);
        let b = min_balanced_bisection(&g, 4, 7).unwrap();
        assert_eq!(b.cut, 0);
    }
}
