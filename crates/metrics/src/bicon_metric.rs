//! Biconnected-component growth (Appendix B, Figure 8(d–f); after Zegura
//! et al. \[50\]).
//!
//! The number of biconnected components inside balls of growing size.
//! Tree-like graphs accumulate one component per edge; richly connected
//! graphs collapse into a few large biconnected blocks.

use crate::balls::{ball_curve, BallSource};
use crate::CurvePoint;
use topogen_graph::bicon::biconnected_component_count;
use topogen_graph::NodeId;

/// Biconnected component count as a ball-growing curve.
pub fn bicon_curve<S: BallSource>(
    source: &S,
    centers: &[NodeId],
    max_h: u32,
    max_ball_nodes: usize,
) -> Vec<CurvePoint> {
    ball_curve(source, centers, max_h, |g| {
        if g.node_count() > max_ball_nodes {
            return None;
        }
        Some(biconnected_component_count(g) as f64)
    })
}

/// Ratio of biconnected components to edges on the whole graph — 1.0 for
/// a tree (every edge a bridge), near 0 for biconnected graphs. A cheap
/// whole-graph summary.
pub fn bridge_fraction(g: &topogen_graph::Graph) -> f64 {
    if g.edge_count() == 0 {
        return 0.0;
    }
    biconnected_component_count(g) as f64 / g.edge_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balls::PlainBalls;
    use topogen_generators::canonical::{kary_tree, mesh, ring};

    #[test]
    fn tree_bicon_counts_equal_edges() {
        let g = kary_tree(2, 5); // 63 nodes, 62 edges
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = vec![0];
        let c = bicon_curve(&src, &centers, 5, 10_000);
        let last = c.last().unwrap();
        assert_eq!(last.value, 62.0);
        assert_eq!(bridge_fraction(&g), 1.0);
    }

    #[test]
    fn ring_is_single_component() {
        let g = ring(12);
        assert!((bridge_fraction(&g) - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn mesh_low_bridge_fraction() {
        let g = mesh(8, 8);
        assert!(bridge_fraction(&g) < 0.05);
    }

    #[test]
    fn curve_radius_zero_is_zero() {
        let g = mesh(5, 5);
        let src = PlainBalls { graph: &g };
        let c = bicon_curve(&src, &[12], 2, 10_000);
        assert_eq!(c[0].value, 0.0);
        assert!(c[1].value >= 1.0);
    }
}
