//! Node diameter (eccentricity) distribution (Appendix B, Figure
//! 7(d–f); after Zegura et al. \[50\]).
//!
//! For each node, its eccentricity — the farthest hop distance to any
//! reachable node — normalized by the mean eccentricity; the figure plots
//! the fraction of nodes per normalized-eccentricity bin, producing the
//! bell shapes the paper describes (one-sided for the Tree).

use rand::Rng;
use topogen_graph::bfs::eccentricity;
use topogen_graph::{Graph, NodeId};
use topogen_par::par_map;

/// Eccentricities of the given nodes (one BFS each; pass a sample for
/// large graphs).
pub fn eccentricities(g: &Graph, nodes: &[NodeId]) -> Vec<u32> {
    par_map(nodes, |&v| eccentricity(g, v))
}

/// A histogram bin of the normalized eccentricity distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EccBin {
    /// Bin center, in units of the mean eccentricity.
    pub normalized: f64,
    /// Fraction of sampled nodes in the bin.
    pub fraction: f64,
}

/// Normalized eccentricity histogram over `bins` equal-width bins
/// spanning \[0.5, 1.6\] × mean (the paper's plotted range). Values
/// outside clamp to the edge bins. Returns an empty vec for empty input.
pub fn eccentricity_histogram(eccs: &[u32], bins: usize) -> Vec<EccBin> {
    if eccs.is_empty() || bins == 0 {
        return Vec::new();
    }
    let mean = eccs.iter().map(|&e| e as f64).sum::<f64>() / eccs.len() as f64;
    if mean == 0.0 {
        return vec![EccBin {
            normalized: 1.0,
            fraction: 1.0,
        }];
    }
    let lo = 0.5;
    let hi = 1.6;
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &e in eccs {
        let x = e as f64 / mean;
        let b = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[b] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| EccBin {
            normalized: lo + (i as f64 + 0.5) * width,
            fraction: c as f64 / eccs.len() as f64,
        })
        .collect()
}

/// Sample up to `k` nodes for eccentricity computation on large graphs.
pub fn eccentricity_sample<R: Rng>(g: &Graph, k: usize, rng: &mut R) -> Vec<u32> {
    let nodes = crate::balls::sample_centers(g.node_count(), k, rng);
    eccentricities(g, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use topogen_generators::canonical::{kary_tree, linear, mesh};

    #[test]
    fn path_eccentricities() {
        let g = linear(5);
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert_eq!(eccentricities(&g, &nodes), vec![4, 3, 2, 3, 4]);
    }

    #[test]
    fn tree_distribution_one_sided() {
        // All leaves share the max eccentricity: mass concentrates at the
        // top of the histogram — the paper's "one-sided" tree shape.
        let g = kary_tree(3, 5);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let eccs = eccentricities(&g, &nodes);
        let max = *eccs.iter().max().unwrap();
        let at_max = eccs.iter().filter(|&&e| e == max).count();
        assert!(at_max as f64 > 0.5 * eccs.len() as f64);
    }

    #[test]
    fn histogram_sums_to_one() {
        let g = mesh(10, 10);
        let nodes: Vec<NodeId> = g.nodes().collect();
        let h = eccentricity_histogram(&eccentricities(&g, &nodes), 11);
        let total: f64 = h.iter().map(|b| b.fraction).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(h.len(), 11);
    }

    #[test]
    fn histogram_empty_inputs() {
        assert!(eccentricity_histogram(&[], 10).is_empty());
        assert!(eccentricity_histogram(&[3, 4], 0).is_empty());
    }

    #[test]
    fn mesh_center_lower_than_corner() {
        let g = mesh(9, 9);
        let corner = eccentricities(&g, &[0])[0];
        let center = eccentricities(&g, &[40])[0]; // (4,4)
        assert_eq!(corner, 16);
        assert_eq!(center, 8);
    }

    #[test]
    fn sampling_bounds() {
        use rand::SeedableRng;
        let g = mesh(12, 12);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let s = eccentricity_sample(&g, 10, &mut rng);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&e| (11..=22).contains(&e)));
    }
}
