//! Eigenvalue rank spectrum (Appendix B, Figure 7(a–c); after Faloutsos
//! et al. \[17\]).
//!
//! The largest adjacency eigenvalues plotted against their rank: the AS
//! graph shows a power-law eigenvalue/rank relationship, and of the
//! generators only PLRG reproduces it. The paper could not compute the RL
//! graph's spectrum ("too large"); our Lanczos solver handles the scaled
//! substitute.

use rand::rngs::StdRng;
use rand::SeedableRng;
use topogen_graph::Graph;
use topogen_linalg::{top_eigenvalues, SparseSym};

/// Top-`k` adjacency eigenvalues of `g`, descending. Deterministic for a
/// given `seed` (the Lanczos start vector).
pub fn eigenvalue_spectrum(g: &Graph, k: usize, seed: u64) -> Vec<f64> {
    let a = SparseSym::adjacency(g.node_count(), g.edges().iter().map(|e| (e.a, e.b)));
    let mut rng = StdRng::seed_from_u64(seed);
    top_eigenvalues(&a, k, &mut rng)
}

/// Least-squares slope of `ln(eigenvalue)` vs `ln(rank)` over the
/// positive eigenvalues — the power-law test of \[17\]. The AS graph and
/// PLRG show slopes near −0.5; graphs with flat spectra (mesh, random)
/// show slopes near 0.
pub fn eigenvalue_rank_slope(spectrum: &[f64]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = spectrum
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 1e-9)
        .map(|(i, &v)| (((i + 1) as f64).ln(), v.ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        None
    } else {
        Some((n * sxy - sx * sy) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use topogen_generators::canonical::{complete, mesh};
    use topogen_generators::plrg::{plrg, PlrgParams};
    use topogen_graph::components::largest_component;

    #[test]
    fn complete_graph_spectrum() {
        let g = complete(30);
        let s = eigenvalue_spectrum(&g, 3, 1);
        assert!((s[0] - 29.0).abs() < 1e-6);
        assert!((s[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn spectrum_descending() {
        let g = mesh(12, 12);
        let s = eigenvalue_spectrum(&g, 10, 1);
        assert!(s.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        // Mesh top eigenvalue < 4 (max degree).
        assert!(s[0] < 4.0);
    }

    #[test]
    fn plrg_spectrum_power_law_like() {
        let g = plrg(
            &PlrgParams {
                n: 2000,
                alpha: 2.2,
                max_degree: None,
            },
            &mut StdRng::seed_from_u64(8),
        );
        let (lcc, _) = largest_component(&g);
        let s = eigenvalue_spectrum(&lcc, 15, 1);
        let slope = eigenvalue_rank_slope(&s).unwrap();
        // Heavy-tailed spectra fall visibly with rank (slope clearly
        // negative); mesh spectra are nearly flat.
        assert!(slope < -0.15, "PLRG slope {slope}");
        let sm = eigenvalue_spectrum(&mesh(44, 45), 15, 1);
        let mslope = eigenvalue_rank_slope(&sm).unwrap();
        assert!(mslope > slope, "mesh {mslope} vs plrg {slope}");
    }

    #[test]
    fn slope_requires_points() {
        assert!(eigenvalue_rank_slope(&[1.0, 0.5]).is_none());
        assert!(eigenvalue_rank_slope(&[]).is_none());
    }
}
