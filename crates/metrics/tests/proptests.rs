//! Property-based tests for the metric suite over arbitrary connected
//! graphs: curve well-formedness, partition validity, distortion bounds.

use proptest::prelude::*;
use topogen_graph::{Graph, NodeId};
use topogen_metrics::balls::PlainBalls;
use topogen_metrics::clustering::graph_clustering;
use topogen_metrics::cover::{is_vertex_cover, vertex_cover_greedy, vertex_cover_matching};
use topogen_metrics::distortion::{graph_distortion, DistortionParams};
use topogen_metrics::engine::{BallPlan, DistortionMetric, ResilienceMetric};
use topogen_metrics::expansion::expansion_curve;
use topogen_metrics::partition::min_balanced_bisection;
use topogen_metrics::CurvePoint;

/// Bitwise equality for curves (NaN-tolerant: NaN == NaN here, because
/// the determinism contract is "same bits", not "same number").
fn same_bits(a: &[CurvePoint], b: &[CurvePoint]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.radius == y.radius
                && x.avg_size.to_bits() == y.avg_size.to_bits()
                && x.value.to_bits() == y.value.to_bits()
        })
}

fn arb_connected() -> impl Strategy<Value = Graph> {
    (3usize..28, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut edges = Vec::new();
        for v in 1..n {
            edges.push(((next() % v) as NodeId, v as NodeId));
        }
        for _ in 0..n {
            let u = (next() % n) as NodeId;
            let v = (next() % n) as NodeId;
            if u != v {
                edges.push((u, v));
            }
        }
        Graph::from_edges(n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn expansion_is_monotone_cdf(g in arb_connected()) {
        let src = PlainBalls { graph: &g };
        let centers: Vec<NodeId> = g.nodes().collect();
        let e = expansion_curve(&src, &centers, g.node_count() as u32);
        prop_assert!(e.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        prop_assert!((e.last().unwrap() - 1.0).abs() < 1e-9, "connected ⇒ E → 1");
        prop_assert!((e[0] - 1.0 / g.node_count() as f64).abs() < 1e-12);
    }

    #[test]
    fn bisection_is_balanced_and_consistent(g in arb_connected()) {
        if let Some(b) = min_balanced_bisection(&g, 3, 17) {
            let t = b.side.iter().filter(|&&s| s).count();
            let n = g.node_count();
            // Within the partitioner's documented tolerance (generous
            // slack for tiny graphs where one node is > 10% of a side).
            prop_assert!(t >= 1 && t < n);
            prop_assert!(
                (t as f64 - n as f64 / 2.0).abs() <= 0.1 * n as f64 + 1.0,
                "split {t}/{n}"
            );
            let cut: u64 = g
                .edges()
                .iter()
                .filter(|e| b.side[e.a as usize] != b.side[e.b as usize])
                .count() as u64;
            prop_assert_eq!(cut, b.cut);
        }
    }

    #[test]
    fn distortion_at_least_one(g in arb_connected()) {
        let d = graph_distortion(&g, &DistortionParams::default()).unwrap();
        prop_assert!(d >= 1.0 - 1e-12);
        // A spanning tree realizes every tree edge at distance 1, so a
        // graph with m edges and n nodes has distortion ≤ roughly the
        // diameter; sanity-bound with n.
        prop_assert!(d <= g.node_count() as f64);
    }

    #[test]
    fn distortion_of_tree_is_exactly_one(seed in any::<u64>()) {
        // A random tree's best spanning tree is itself.
        let n = 3 + (seed % 20) as usize;
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let edges: Vec<(NodeId, NodeId)> =
            (1..n).map(|v| ((next() % v) as NodeId, v as NodeId)).collect();
        let g = Graph::from_edges(n, edges);
        let d = graph_distortion(&g, &DistortionParams::default()).unwrap();
        prop_assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vertex_covers_valid_and_ordered(g in arb_connected()) {
        let m = vertex_cover_matching(&g);
        let gr = vertex_cover_greedy(&g);
        prop_assert!(is_vertex_cover(&g, &m));
        prop_assert!(is_vertex_cover(&g, &gr));
        // Matching lower bound: |matching|/2 pairs ⇒ OPT ≥ |m|/2,
        // so greedy (any cover) is ≥ |m|/2 as well.
        prop_assert!(gr.len() >= m.len() / 2);
    }

    #[test]
    fn clustering_in_unit_interval(g in arb_connected()) {
        if let Some(c) = graph_clustering(&g) {
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn ball_plan_identical_across_thread_counts(g in arb_connected(), seed in any::<u64>()) {
        // The engine's determinism contract: the same plan produces
        // bit-identical resilience/distortion curves and expansion
        // values at 1 worker and at N workers, and its expansion agrees
        // bitwise with the legacy PlainBalls computation.
        let src = PlainBalls { graph: &g };
        let ball_centers: Vec<NodeId> = g.nodes().step_by(2).collect();
        let exp_centers: Vec<NodeId> = g.nodes().collect();
        let max_h = 6u32;
        let res = ResilienceMetric { restarts: 2, max_ball_nodes: 1_000 };
        let dis = DistortionMetric { max_ball_nodes: 1_000, use_bartal: false, polish: false };
        let run = |threads: usize| {
            BallPlan::new(&src, max_h, seed)
                .ball_centers(ball_centers.clone())
                .expansion_centers(exp_centers.clone())
                .threads(Some(threads))
                .metric(&res)
                .metric(&dis)
                .run()
        };
        let one = run(1);
        let many = run(4);
        for (ca, cb) in one.curves.iter().zip(&many.curves) {
            prop_assert!(same_bits(ca, cb));
        }
        prop_assert!(one
            .expansion
            .iter()
            .zip(&many.expansion)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        let legacy = expansion_curve(&src, &exp_centers, max_h);
        prop_assert!(one
            .expansion
            .iter()
            .zip(&legacy)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn polish_never_worse(g in arb_connected()) {
        let plain = graph_distortion(
            &g,
            &DistortionParams { polish: false, ..Default::default() },
        )
        .unwrap();
        let polished = graph_distortion(
            &g,
            &DistortionParams { polish: true, ..Default::default() },
        )
        .unwrap();
        prop_assert!(polished <= plain + 1e-9, "{polished} > {plain}");
    }
}
