//! Offline vendored shim of the `serde_json` API surface this workspace
//! uses (see `vendor/README.md`): [`to_string`], [`to_string_pretty`],
//! and [`from_str`], operating over the vendored serde shim's
//! [`Content`](serde::Content) tree.
//!
//! Output matches upstream serde_json conventions: compact or 2-space
//! pretty printing, non-finite floats rendered as `null`, and strings
//! escaped per RFC 8259.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Content, Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte offset {}",
            parser.pos
        )));
    }
    T::from_content(&content).map_err(|e| Error(e.0))
}

fn write_content(out: &mut String, c: &Content, indent: Option<&str>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // Rust's Display for f64 is the shortest round-trippable form.
                out.push_str(&v.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Content::Null),
            Some(b't') => self.parse_literal("true", Content::Bool(true)),
            Some(b'f') => self.parse_literal("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error(format!(
                "unexpected character at byte offset {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!(
                "invalid literal at byte offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.parse_hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| {
                                Error("invalid unicode escape".into())
                            })?);
                            continue;
                        }
                        _ => return Err(Error("invalid escape sequence".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parse exactly four hex digits (after `\u`), leaving pos past them.
    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated unicode escape".into()))?;
        let text =
            std::str::from_utf8(slice).map_err(|_| Error("invalid unicode escape".into()))?;
        let cp = u32::from_str_radix(text, 16)
            .map_err(|_| Error("invalid unicode escape".into()))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_vec() {
        let v = vec![1.5f64, -2.0, 3.0];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.5,-2,3]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nan_is_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\n\"quote\"\\tab\t\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_escape() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn pretty_prints_objects() {
        let c = Content::Map(vec![
            ("a".into(), Content::U64(1)),
            ("b".into(), Content::Seq(vec![Content::Bool(true)])),
        ]);
        struct Wrap(Content);
        impl Serialize for Wrap {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Wrap(c)).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.0 x").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
    }
}
