//! Offline vendored shim of the `serde` API surface this workspace uses
//! (see `vendor/README.md` for the policy).
//!
//! Instead of upstream serde's visitor-based data model, this shim uses a
//! simple owned tree ([`Content`]): [`Serialize`] renders a value into a
//! `Content`, [`Deserialize`] rebuilds a value from one. The derive
//! macros (behind the `derive` feature, from the vendored `serde_derive`
//! crate) generate these impls for plain structs with named fields and
//! for unit-variant enums — exactly the shapes this workspace derives.
//! `serde_json` (also vendored) renders/parses `Content` as JSON with
//! upstream-compatible field names, so the on-disk artifacts are
//! interchangeable with real serde_json output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree every value serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Ordered map with string keys (struct fields / JSON objects).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a map key.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// A value that can render itself into [`Content`].
pub trait Serialize {
    /// Render into the data tree.
    fn to_content(&self) -> Content;
}

/// A value that can rebuild itself from [`Content`].
pub trait Deserialize: Sized {
    /// Rebuild from the data tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) if *v >= 0 => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Ok(*v as $t),
                    other => Err(DeError(format!("expected unsigned integer, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::I64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    other => Err(DeError(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::Null => Ok(<$t>::NAN),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

ser_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// Identity impls so callers can parse/emit arbitrary JSON as a raw
// `Content` tree (e.g. validating generated trace exports).
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        let v: Vec<f64> = Deserialize::from_content(&vec![1.0, 2.0].to_content()).unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
        let o: Option<u32> = Deserialize::from_content(&Content::Null).unwrap();
        assert_eq!(o, None);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(bool::from_content(&Content::U64(1)).is_err());
        assert!(String::from_content(&Content::Bool(true)).is_err());
        assert!(<Vec<f64>>::from_content(&Content::Str("x".into())).is_err());
    }

    #[test]
    fn map_get() {
        let m = Content::Map(vec![("a".into(), Content::U64(1))]);
        assert_eq!(m.get("a"), Some(&Content::U64(1)));
        assert_eq!(m.get("b"), None);
    }
}
