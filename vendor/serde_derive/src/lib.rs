//! Offline vendored shim of serde's derive macros (see `vendor/README.md`).
//!
//! Supports exactly the two shapes this workspace derives:
//! structs with named fields, and enums whose variants are all unit
//! variants. The generated impls target the vendored `serde` shim's
//! `Serialize::to_content` / `Deserialize::from_content` model.
//!
//! Parsing is done directly on the `proc_macro::TokenStream` (no
//! syn/quote available offline): attributes and visibility are skipped,
//! field types are consumed up to the next top-level comma.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Enum of unit variants: variant identifiers in declaration order.
    Enum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    let mut name: Option<String> = None;
    let mut body: Option<TokenStream> = None;

    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Outer attribute: consume the bracketed group that follows.
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match (kind, s.as_str()) {
                    (None, "struct") => kind = Some("struct"),
                    (None, "enum") => kind = Some("enum"),
                    (None, _) => {} // pub, crate, etc.
                    (Some(_), _) if name.is_none() => name = Some(s),
                    (Some(_), "where") => {
                        panic!("vendored serde_derive: where clauses are not supported")
                    }
                    _ => {}
                }
            }
            TokenTree::Punct(p) if p.as_char() == '<' && name.is_some() => {
                panic!("vendored serde_derive: generic types are not supported")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace && name.is_some() => {
                body = Some(g.stream());
                break;
            }
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Parenthesis && name.is_some() =>
            {
                panic!("vendored serde_derive: tuple structs are not supported")
            }
            _ => {}
        }
    }

    let kind = kind.expect("vendored serde_derive: expected `struct` or `enum`");
    let name = name.expect("vendored serde_derive: expected a type name");
    let body = body.expect("vendored serde_derive: expected a brace-delimited body");

    let shape = match kind {
        "struct" => Shape::Struct(parse_struct_fields(body)),
        _ => Shape::Enum(parse_unit_variants(body)),
    };
    Input { name, shape }
}

/// Collect field names from a named-field struct body, skipping
/// attributes/visibility and consuming each type up to the top-level comma.
fn parse_struct_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let field_name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        // Optional pub(...) restriction group.
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    } else {
                        break s;
                    }
                }
                Some(other) => {
                    panic!("vendored serde_derive: unexpected token in struct body: {other}")
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("vendored serde_derive: expected `:` after field `{field_name}`"),
        }
        fields.push(field_name);
        // Consume the type, stopping at a comma outside angle brackets.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                },
                _ => {}
            }
        }
    }
}

/// Collect variant names from an enum body, requiring every variant be unit.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                match iter.peek() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                        iter.next();
                    }
                    Some(other) => panic!(
                        "vendored serde_derive: only unit enum variants are supported, \
                         found `{other}` after variant"
                    ),
                }
            }
            other => {
                panic!("vendored serde_derive: unexpected token in enum body: {other}")
            }
        }
    }
    variants
}

/// Derive the vendored `serde::Serialize` (`to_content`) impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "::serde::Content::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(" ")
            )
        }
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    );
    code.parse().expect("vendored serde_derive: generated invalid Serialize impl")
}

/// Derive the vendored `serde::Deserialize` (`from_content`) impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(c.get(\"{f}\").ok_or_else(\
                         || ::serde::DeError(::std::format!(\"missing field `{f}`\")))?)?,"
                    )
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match c {{\n\
                     ::serde::Content::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"expected string variant for {name}, got {{other:?}}\"))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    let code = format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    code.parse().expect("vendored serde_derive: generated invalid Deserialize impl")
}
