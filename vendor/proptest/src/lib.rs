//! Offline vendored shim of the `proptest` API surface this workspace
//! uses (see `vendor/README.md` for the policy).
//!
//! Random property testing without shrinking: each `proptest!` test
//! runs `ProptestConfig::cases` deterministic random cases (seeded from
//! the test name, so failures are reproducible by re-running the same
//! test). `prop_assume!` rejections re-draw the case; a failed
//! `prop_assert!` panics with the assertion message and case number.
//! `.proptest-regressions` files are ignored by this shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// How a single generated case ended, when it didn't pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: discard the case and draw a fresh one.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` failed with this message.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T` (shim: uniform over the bit domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Range, Rng, Strategy, TestRng};

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// FNV-1a over the test name: a stable per-test RNG seed.
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The RNG for a named test, seeded from [`seed_for_test`]. Called by
/// the `proptest!` expansion so user crates need no `rand` dependency.
pub fn rng_for_test(name: &str) -> TestRng {
    TestRng::seed_from_u64(seed_for_test(name))
}

/// Everything tests conventionally glob-import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`ProptestConfig::cases`] random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng: $crate::TestRng =
                $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).saturating_add(1000),
                    "proptest: too many prop_assume! rejections in {}",
                    stringify!($name),
                );
                $(let $p = $crate::Strategy::generate(&($s), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {} failed: {}", passed + 1, config.cases, msg)
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure reports the case and message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Discard the current case unless `cond` holds; a fresh case is drawn.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..28, x in 0.25f64..0.75) {
            prop_assert!((3..28).contains(&n));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn combinators_compose(v in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u32..10, 1..4))
        }).prop_map(|(n, xs)| (n, xs))) {
            let (n, xs) = v;
            prop_assert!((1..5).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for_test("a"), crate::seed_for_test("b"));
    }
}
