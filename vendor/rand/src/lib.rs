//! Offline vendored shim of the `rand` 0.8 API surface this workspace
//! uses (see `vendor/README.md` for the policy).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, self-contained implementation of the
//! exact APIs it consumes: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). The generator behind
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 stream of upstream rand, so *absolute* random streams differ
//! from upstream, but every workspace experiment only requires a
//! deterministic, statistically sound PRNG, which this is.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core trait every random number generator implements.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The byte-seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the same
    /// expansion upstream rand documents for this method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (see [`distributions::Standard`]).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// A uniformly random value within `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample (the sugar behind
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Lemire-style unbiased bounded integer sampling via 128/64-bit
/// widening; `span` must be nonzero.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening multiply rejection sampling.
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit: $t = {
                    use distributions::Distribution as _;
                    distributions::Standard.sample(rng)
                };
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Uniform distributions over primitive types.
pub mod distributions {
    use super::RngCore;

    /// Something that can produce values of `T` from an RNG.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution: full integer domains, `[0, 1)`
    /// for floats, fair coin for `bool`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 of upstream rand 0.8 — streams differ from
    /// upstream for the same seed, but determinism (same seed → same
    /// stream) and statistical quality hold, which is all the
    /// experiments rely on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro must not start in the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            let mut rng = StdRng { s };
            // Decorrelate nearby byte seeds.
            for _ in 0..4 {
                rng.step();
            }
            rng
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (&mut *rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(&mut *rng).gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0..=5u32);
            assert!(y <= 5);
            let z = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_mean_is_central() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.gen_range(0..100u64)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = StdRng::seed_from_u64(1);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        assert_eq!([7].choose(&mut r), Some(&7));
    }
}
