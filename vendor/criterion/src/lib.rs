//! Offline vendored shim of the `criterion` API surface this workspace
//! uses (see `vendor/README.md` for the policy).
//!
//! A minimal wall-clock harness: each `bench_function` runs a short
//! warm-up, then `sample_size` timed samples, and prints mean/min time
//! per iteration. No statistics, plots, or baselines — just enough to
//! keep `cargo bench` compiling, running, and emitting useful numbers
//! offline. All CLI flags (`--quick`, filters, …) are accepted; a bare
//! positional argument filters benchmarks by substring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifier combining a function name and a parameter display value.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("plrg", 2000)` displays as `plrg/2000`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }
}

/// Anything `bench_function` accepts as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the `group/name` string used in output.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level handle passed to benchmark functions.
pub struct Criterion {
    filter: Option<String>,
    quick: bool,
}

impl Criterion {
    fn from_args() -> Self {
        let mut filter = None;
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => quick = true,
                a if a.starts_with("--") => {} // --bench etc.: accept and ignore
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, quick }
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and immediately run one benchmark.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        if let Some(filter) = &self.parent.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let samples = if self.parent.quick {
            1
        } else {
            self.sample_size
        };
        // Warm-up + calibration pass.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..samples {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            min = min.min(b.elapsed);
        }
        println!(
            "bench {full:<40} mean {:>12?}   min {:>12?}   ({samples} samples)",
            total / samples as u32,
            min,
        );
        self
    }

    /// Finish the group (no-op in the shim; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::__criterion_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Produce `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Internal constructor used by `criterion_group!` expansions.
#[doc(hidden)]
pub fn __criterion_from_args() -> Criterion {
    Criterion::from_args()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("plrg", 2000).into_id(), "plrg/2000");
    }

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion {
            filter: None,
            quick: true,
        };
        let mut ran = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| {
                b.iter(|| {
                    ran += 1;
                })
            });
            g.finish();
        }
        assert!(ran >= 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("other".into()),
            quick: true,
        };
        let mut ran = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert_eq!(ran, 0);
    }
}
