//! The paper's Question #1 end to end: which generators best model the
//! large-scale structure of the Internet?
//!
//! ```sh
//! cargo run --release --example internet_comparison
//! ```
//!
//! Builds the synthetic measured AS and RL graphs, the structural
//! generators (Transit-Stub, Tiers, Waxman) and the PLRG; computes the
//! three basic metrics for each; prints the signature table and says
//! which generators match the measured graphs — reproducing the §4.4
//! conclusion.

use topogen::core::suite::{run_suite, SuiteParams};
use topogen::core::zoo::{build, Scale, TopologySpec};

fn main() {
    let specs = TopologySpec::figure1_zoo(Scale::Small);
    let params = SuiteParams::quick();
    let mut rows = Vec::new();
    for spec in specs {
        eprintln!("building + measuring {} ...", spec.name());
        let topo = build(&spec, Scale::Small, 42);
        let result = run_suite(&topo, &params);
        rows.push((topo.name.clone(), topo.graph.node_count(), result.signature));
    }

    println!("{:8} {:>7} {:>10}", "Topology", "Nodes", "Signature");
    println!("{}", "-".repeat(28));
    for (name, n, sig) in &rows {
        println!("{:8} {:>7} {:>10}", name, n, sig);
    }

    let internet_sig = rows
        .iter()
        .find(|(name, ..)| name == "AS")
        .map(|(_, _, s)| *s)
        .expect("AS row present");
    println!();
    println!("Measured-graph signature: {internet_sig}");
    let matching: Vec<&str> = rows
        .iter()
        .filter(|(name, _, s)| *s == internet_sig && name != "AS" && name != "RL")
        .map(|(name, ..)| name.as_str())
        .collect();
    println!("Generators matching it: {}", matching.join(", "));
    println!();
    println!("Paper §4.4: \"Only the PLRG matches the measured graphs in all");
    println!("three metrics\" — Tiers misses on expansion, TS on resilience,");
    println!("Waxman on distortion.");
}
