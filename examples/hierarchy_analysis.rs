//! The paper's Question #2 end to end: do degree-based generators
//! produce hierarchy, and where does it come from?
//!
//! ```sh
//! cargo run --release --example hierarchy_analysis
//! ```
//!
//! Computes link values (weighted vertex covers of traversal sets, §5)
//! for the canonical networks, the structural generators and the PLRG;
//! prints each topology's strict/moderate/loose class and its link-value
//! ↔ min-endpoint-degree correlation — reproducing the §5.1 grouping
//! table and the Figure 5 story.

use topogen::core::hier::{hierarchy_report, HierOptions};
use topogen::core::zoo::{build, Scale, TopologySpec};
use topogen::generators::plrg::PlrgParams;
use topogen::generators::tiers::TiersParams;
use topogen::generators::transit_stub::TransitStubParams;
use topogen::generators::waxman::WaxmanParams;

fn main() {
    // Smaller instances than the metric suite: link values need an
    // all-pairs traversal analysis (the paper used the RL *core* for the
    // same reason).
    let specs = vec![
        TopologySpec::Tree { k: 3, depth: 5 },
        TopologySpec::Mesh { side: 16 },
        TopologySpec::Random { n: 450, p: 0.009 },
        TopologySpec::Waxman(WaxmanParams {
            n: 450,
            alpha: 0.05,
            beta: 0.3,
        }),
        TopologySpec::TransitStub(TransitStubParams {
            transit_domains: 3,
            stubs_per_transit_node: 2,
            stub_nodes_per_domain: 6,
            ..TransitStubParams::paper_default()
        }),
        TopologySpec::Tiers(TiersParams {
            mans_per_wan: 6,
            lans_per_man: 4,
            wan_nodes: 150,
            man_nodes: 12,
            lan_nodes: 4,
            ..TiersParams::paper_default()
        }),
        TopologySpec::Plrg(PlrgParams {
            n: 500,
            alpha: 2.246,
            max_degree: None,
        }),
        TopologySpec::MeasuredAs,
    ];

    println!(
        "{:10} {:>6} {:>9} {:>9} {:>10} {:>7}",
        "Topology", "Links", "MaxValue", "Median", "Class", "Corr"
    );
    println!("{}", "-".repeat(58));
    for spec in specs {
        // The AS graph at CI scale is ~1100 nodes — fine for this
        // analysis; everything else was sized above.
        let scale = Scale::Small;
        eprintln!("analyzing {} ...", spec.name());
        let topo = build(&spec, scale, 42);
        let report = hierarchy_report(&topo, &HierOptions::default());
        println!(
            "{:10} {:>6} {:>9.4} {:>9.4} {:>10} {:>7.2}",
            report.name,
            report.values.len(),
            report.max,
            report.median,
            report.class,
            report.degree_correlation.unwrap_or(f64::NAN)
        );
    }
    println!();
    println!("Paper §5: Tree/TS/Tiers are strict; AS and PLRG moderate; Mesh,");
    println!("Random and Waxman loose. PLRG's near-1 correlation shows its");
    println!("hierarchy lives entirely in the degree distribution — the");
    println!("resolution of the paper's paradox.");
}
