//! Policy routing on the synthetic Internet: valley-free paths, BGP
//! table simulation, and Gao relationship inference (§3.2.1, Appendix E).
//!
//! ```sh
//! cargo run --release --example policy_routing
//! ```
//!
//! Builds the annotated AS graph, simulates the routing tables of the
//! best-connected vantage ASes, re-infers the relationships with Gao's
//! algorithm, and reports (a) inference accuracy against ground truth,
//! (b) how policy inflates path lengths, and (c) how much of the true
//! topology the vantage points even see — the paper's measurement
//! caveats, quantified.

use topogen::graph::bfs;
use topogen::graph::NodeId;
use topogen::measured::as_graph::{internet_as, InternetAsParams};
use topogen::measured::observe::edge_visibility;
use topogen::policy::bgp::{routing_tables, top_degree_nodes};
use topogen::policy::gao::{infer_relationships, GaoConfig};
use topogen::policy::valley::policy_distances;

fn main() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2001);
    let m = internet_as(&InternetAsParams::default_scaled(), &mut rng);
    let g = &m.graph;
    println!(
        "synthetic AS graph: {} nodes, {} links, avg degree {:.2}",
        g.node_count(),
        g.edge_count(),
        g.average_degree()
    );

    // 1. Simulate route-views: tables at the best-connected ASes.
    let vantages = top_degree_nodes(g, 10);
    let tables = routing_tables(g, &m.annotations, &vantages);
    println!(
        "simulated {} AS paths from {} vantages",
        tables.len(),
        vantages.len()
    );

    // 2. Gao inference vs ground truth.
    let inferred = infer_relationships(g, &tables, &GaoConfig::default());
    let agreement = inferred.agreement(&m.annotations);
    println!(
        "Gao inference agreement with ground truth: {:.1}%",
        100.0 * agreement
    );

    // 3. Path inflation: policy vs shortest paths from a stub AS.
    let stub = (g.node_count() - 1) as NodeId;
    let plain = bfs::distances(g, stub);
    let policy = policy_distances(g, &m.annotations, stub);
    let mut inflated = 0usize;
    let mut reachable = 0usize;
    let mut extra = 0u64;
    for v in 0..g.node_count() {
        if policy[v] != u32::MAX && plain[v] != u32::MAX && v != stub as usize {
            reachable += 1;
            if policy[v] > plain[v] {
                inflated += 1;
                extra += (policy[v] - plain[v]) as u64;
            }
        }
    }
    println!(
        "policy path inflation from stub AS {stub}: {}/{} destinations inflated, avg +{:.2} hops on those",
        inflated,
        reachable,
        if inflated > 0 { extra as f64 / inflated as f64 } else { 0.0 }
    );

    // 4. Real BGP (Gao–Rexford preferences) vs the paper's model: how
    // many destinations pick a route longer than the shortest
    // valley-free path?
    let bgp = topogen::policy::bgp_sim::routes_to(g, &m.annotations, stub);
    let mut pref_inflated = 0usize;
    for (v, &pol) in policy.iter().enumerate() {
        if bgp.len[v] != u32::MAX && pol != u32::MAX && bgp.len[v] > pol {
            pref_inflated += 1;
        }
    }
    println!(
        "Gao–Rexford preferences inflate {pref_inflated}/{reachable} routes beyond the paper's shortest-valley-free model"
    );

    // 5. Measurement completeness (Chang et al.'s caveat).
    for k in [1, 5, 10] {
        let vis = edge_visibility(g, &m.annotations, &top_degree_nodes(g, k));
        println!(
            "edge visibility from {k:>2} vantage(s): {:.1}%",
            100.0 * vis
        );
    }
    println!();
    println!("The paper approximates policy routing because it inflates paths");
    println!("and hides peripheral peering links — both effects visible above.");
}
