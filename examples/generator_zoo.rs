//! Tour of every generator in the workspace: build each one, print its
//! basic shape statistics and degree-distribution character.
//!
//! ```sh
//! cargo run --release --example generator_zoo
//! ```
//!
//! Reproduces the flavor of the paper's Figure 1 (the topology table)
//! and Appendix A (which generators have heavy-tailed degrees).

use topogen::core::zoo::{build, Scale, TopologySpec};
use topogen::generators::degseq::{fit_power_law_exponent, max_to_mean_degree_ratio};
use topogen::graph::bfs::eccentricity;

fn main() {
    let mut specs = TopologySpec::figure1_zoo(Scale::Small);
    specs.extend(TopologySpec::degree_based_zoo(Scale::Small));
    specs.push(TopologySpec::NLevel(
        topogen::generators::nlevel::NLevelParams::three_level_1000(),
    ));
    println!(
        "{:10} {:>7} {:>7} {:>8} {:>8} {:>9} {:>7}",
        "Topology", "Nodes", "Links", "AvgDeg", "MaxDeg", "Max/Mean", "Alpha"
    );
    println!("{}", "-".repeat(64));
    for spec in specs {
        let t = build(&spec, Scale::Small, 7);
        let g = &t.graph;
        let alpha = fit_power_law_exponent(&g.degrees(), 2)
            .map(|a| format!("{a:.2}"))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:10} {:>7} {:>7} {:>8.2} {:>8} {:>9.1} {:>7}",
            t.name,
            g.node_count(),
            g.edge_count(),
            g.average_degree(),
            g.max_degree(),
            max_to_mean_degree_ratio(g),
            alpha
        );
    }
    println!();
    // A taste of structure: diameters of two contrasting networks.
    let mesh = build(&TopologySpec::Mesh { side: 30 }, Scale::Small, 7);
    let plrg = build(
        &TopologySpec::Plrg(topogen::generators::plrg::PlrgParams {
            n: 1300,
            alpha: 2.246,
            max_degree: None,
        }),
        Scale::Small,
        7,
    );
    println!(
        "eccentricity of node 0: Mesh(900) = {}, PLRG(~1000) = {}",
        eccentricity(&mesh.graph, 0),
        eccentricity(&plrg.graph, 0)
    );
    println!("(the mesh is geometrically wide; the PLRG is a small world)");
}
