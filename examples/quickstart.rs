//! Quickstart: generate a topology, measure it, classify it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's canonical calibration networks plus a PLRG, runs
//! the three basic metrics on each, and prints the Low/High signature
//! table of §3.2.1/§4.4.

use topogen::core::suite::{run_suite, SuiteParams};
use topogen::core::zoo::{build, Scale, TopologySpec};
use topogen::generators::plrg::PlrgParams;

fn main() {
    let specs = vec![
        TopologySpec::Tree { k: 3, depth: 6 },
        TopologySpec::Mesh { side: 30 },
        TopologySpec::Random { n: 1200, p: 0.0035 },
        TopologySpec::Plrg(PlrgParams {
            n: 1300,
            alpha: 2.246,
            max_degree: None,
        }),
    ];
    println!(
        "{:10} {:>7} {:>9} {:>10}",
        "Topology", "Nodes", "AvgDeg", "Signature"
    );
    println!("{}", "-".repeat(40));
    for spec in specs {
        let topo = build(&spec, Scale::Small, 42);
        let result = run_suite(&topo, &SuiteParams::quick());
        println!(
            "{:10} {:>7} {:>9.2} {:>10}",
            topo.name,
            topo.graph.node_count(),
            topo.graph.average_degree(),
            result.signature
        );
    }
    println!();
    println!("The paper's claim: the Internet (and PLRG) read HHL — high");
    println!("expansion, high resilience, low distortion — the signature of");
    println!("a resilient, loosely hierarchical, tree-ish network.");
}
