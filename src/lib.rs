//! # topogen
//!
//! A from-scratch Rust reproduction of
//!
//! > Hongsuda Tangmunarunkit, Ramesh Govindan, Sugih Jamin, Scott
//! > Shenker, Walter Willinger. *Network Topology Generators:
//! > Degree-Based vs. Structural.* SIGCOMM 2002.
//!
//! The paper asks which family of Internet topology generators —
//! *structural* (Transit-Stub, Tiers) or *degree-based* (PLRG,
//! Barabási–Albert, BRITE, GLP, Inet) — better captures the Internet's
//! **large-scale structure**, measured with three ball-growing metrics
//! (expansion, resilience, distortion) and a hierarchy analysis based on
//! link traversal sets. Its famous answer: the degree-based generators
//! win, because a power-law degree distribution plus random wiring
//! *implies* the Internet's moderate, loosely layered hierarchy.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — undirected simple-graph substrate (CSR, BFS, balls,
//!   biconnectivity, trees).
//! * [`generators`] — every generator the paper compares, plus the
//!   connectivity variants of Appendix D.
//! * [`measured`] — synthetic annotated stand-ins for the measured AS
//!   and router-level graphs (see DESIGN.md for the substitution
//!   rationale).
//! * [`policy`] — valley-free policy routing, Gao relationship
//!   inference, BGP-table simulation, policy-induced balls.
//! * [`metrics`] — the three basic metrics and the Appendix B suite.
//! * [`hierarchy`] — link values, strict/moderate/loose classes, the
//!   link-value ↔ degree correlation.
//! * [`par`] — the shared parallel substrate: order-preserving scoped
//!   `par_map` and the `Instrument` counter/phase-timer layer.
//! * [`linalg`] — Jacobi and Lanczos eigensolvers for spectra.
//! * [`core`] — the comparison framework: topology zoo, suite runner,
//!   L/H signatures, reporting.
//!
//! ## Quickstart
//!
//! ```
//! use topogen::core::zoo::{build, Scale, TopologySpec};
//! use topogen::core::suite::{run_suite, SuiteParams};
//! use topogen::generators::plrg::PlrgParams;
//!
//! // Build the paper's PLRG instance (CI-sized) and classify it.
//! let spec = TopologySpec::Plrg(PlrgParams { n: 1300, alpha: 2.246, max_degree: None });
//! let topo = build(&spec, Scale::Small, 42);
//! let result = run_suite(&topo, &SuiteParams::quick());
//! // The paper's headline: PLRG shares the Internet's HHL signature.
//! assert_eq!(result.signature.to_string(), "HHL");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use topogen_core as core;
pub use topogen_generators as generators;
pub use topogen_graph as graph;
pub use topogen_hierarchy as hierarchy;
pub use topogen_linalg as linalg;
pub use topogen_measured as measured;
pub use topogen_metrics as metrics;
pub use topogen_par as par;
pub use topogen_policy as policy;
