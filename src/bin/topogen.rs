//! `topogen` — generate, inspect and classify network topologies from
//! the command line.
//!
//! ```text
//! topogen gen <generator> [--n N] [--seed S] [-o FILE] [generator args]
//! topogen info <FILE>
//! topogen classify <FILE> [--seed S]
//! topogen hierarchy <FILE>
//!
//! generators:
//!   tree --k K --depth D          mesh --side S        linear --n N
//!   random --n N --p P            waxman --n N --alpha A --beta B
//!   ts                            tiers
//!   plrg --n N --alpha A          ba --n N --m M
//!   glp --n N                     inet --n N           brite --n N
//! ```
//!
//! Graphs are exchanged as `u v` edge lists (`#`-comments allowed), so
//! real measured topologies (route-views, CAIDA) can be fed straight
//! into `classify` and `hierarchy`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use topogen::core::classify::{
    classify_distortion, classify_expansion, classify_resilience, ClassifyThresholds,
};
use topogen::core::suite::{run_suite, SuiteParams};
use topogen::core::zoo::{BuiltTopology, TopologySpec};
use topogen::generators as gens;
use topogen::graph::io::{parse_edge_list, to_edge_list};
use topogen::graph::Graph;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    match args[0].as_str() {
        "gen" => cmd_gen(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "classify" => cmd_classify(&args[1..]),
        "hierarchy" => cmd_hierarchy(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: topogen gen <generator> [--n N] [--seed S] [-o FILE] [args]\n\
         \x20      topogen info <FILE>\n\
         \x20      topogen classify <FILE> [--seed S]\n\
         \x20      topogen hierarchy <FILE>\n\
         \x20      topogen compare <FILE1> <FILE2>\n\
         generators: tree mesh linear random waxman ts tiers nlevel plrg ba glp inet brite"
    );
    std::process::exit(2);
}

/// Parse `--key value` pairs plus positional args.
fn parse_flags(args: &[String]) -> (Vec<String>, HashMap<String, String>) {
    let mut pos = Vec::new();
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("flag --{key} needs a value");
                std::process::exit(2);
            });
            flags.insert(key.to_string(), v.clone());
        } else if a == "-o" {
            let v = it.next().expect("-o needs a file");
            flags.insert("out".into(), v.clone());
        } else {
            pos.push(a.clone());
        }
    }
    (pos, flags)
}

fn get<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("bad value for --{key}: {v}");
            std::process::exit(2);
        }),
    }
}

fn cmd_gen(args: &[String]) {
    let (pos, flags) = parse_flags(args);
    let Some(which) = pos.first() else { usage() };
    let seed: u64 = get(&flags, "seed", 42);
    let n: usize = get(&flags, "n", 1000);
    let mut rng = StdRng::seed_from_u64(seed);
    let g: Graph = match which.as_str() {
        "tree" => gens::canonical::kary_tree(get(&flags, "k", 3), get(&flags, "depth", 6)),
        "mesh" => {
            let s = get(&flags, "side", 30);
            gens::canonical::mesh(s, s)
        }
        "linear" => gens::canonical::linear(n),
        "random" => gens::canonical::random_gnp(n, get(&flags, "p", 0.004), &mut rng),
        "waxman" => gens::waxman::waxman(
            &gens::waxman::WaxmanParams {
                n,
                alpha: get(&flags, "alpha", 0.02),
                beta: get(&flags, "beta", 0.3),
            },
            &mut rng,
        ),
        "ts" => {
            gens::transit_stub::transit_stub(
                &gens::transit_stub::TransitStubParams::paper_default(),
                &mut rng,
            )
            .graph
        }
        "tiers" => gens::tiers::tiers(&gens::tiers::TiersParams::paper_default(), &mut rng),
        "plrg" => gens::plrg::plrg(
            &gens::plrg::PlrgParams {
                n,
                alpha: get(&flags, "alpha", 2.246),
                max_degree: None,
            },
            &mut rng,
        ),
        "ba" => gens::ba::barabasi_albert(
            &gens::ba::BaParams {
                n,
                m: get(&flags, "m", 2),
            },
            &mut rng,
        ),
        "glp" => gens::glp::glp(&gens::glp::GlpParams::paper_as_fit(n), &mut rng),
        "inet" => gens::inet::inet(&gens::inet::InetParams::paper_default(n), &mut rng),
        "brite" => gens::brite::brite(&gens::brite::BriteParams::paper_default(n), &mut rng),
        "nlevel" => gens::nlevel::n_level(
            &gens::nlevel::NLevelParams {
                nodes_per_level: get(&flags, "k", 10),
                edge_prob: get(&flags, "p", 0.4),
                levels: get(&flags, "levels", 3),
            },
            &mut rng,
        ),
        other => {
            eprintln!("unknown generator {other:?}");
            std::process::exit(2);
        }
    };
    let text = to_edge_list(&g);
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, text).expect("write output file");
            eprintln!(
                "wrote {} ({} nodes, {} edges)",
                path,
                g.node_count(),
                g.edge_count()
            );
        }
        None => print!("{text}"),
    }
}

fn load(path: &str) -> Graph {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_edge_list(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn cmd_info(args: &[String]) {
    let (pos, _) = parse_flags(args);
    let Some(path) = pos.first() else { usage() };
    let g = load(path);
    let (lcc, _) = topogen::graph::components::largest_component(&g);
    println!("nodes:            {}", g.node_count());
    println!("edges:            {}", g.edge_count());
    println!("average degree:   {:.3}", g.average_degree());
    println!("max degree:       {}", g.max_degree());
    println!("largest component: {} nodes", lcc.node_count());
    if let Some(alpha) = gens::degseq::fit_power_law_exponent(&g.degrees(), 2) {
        println!("power-law alpha:  {alpha:.3} (MLE, x_min = 2)");
    }
    if let Some(c) = topogen::metrics::clustering::graph_clustering(&lcc) {
        println!("clustering:       {c:.4}");
    }
}

fn cmd_classify(args: &[String]) {
    let (pos, flags) = parse_flags(args);
    let Some(path) = pos.first() else { usage() };
    let g = load(path);
    let (lcc, _) = topogen::graph::components::largest_component(&g);
    let t = BuiltTopology {
        name: path.clone(),
        graph: lcc,
        annotations: None,
        router_as: None,
        as_overlay: None,
        spec: TopologySpec::MeasuredAs, // placeholder, unused by the suite
    };
    let mut params = SuiteParams::quick();
    params.seed = get(&flags, "seed", 0x51DE);
    let r = run_suite(&t, &params);
    let th = ClassifyThresholds::default();
    println!("expansion:  {}", classify_expansion(&r.expansion, &th));
    println!("resilience: {}", classify_resilience(&r.resilience, &th));
    println!("distortion: {}", classify_distortion(&r.distortion, &th));
    println!("signature:  {}", r.signature);
    println!();
    println!("(HHL is the Internet's signature per the paper)");
}

/// Classify two graphs side by side and report whether they share the
/// paper's large-scale structure (signature + hierarchy class).
fn cmd_compare(args: &[String]) {
    let (pos, flags) = parse_flags(args);
    let (Some(p1), Some(p2)) = (pos.first(), pos.get(1)) else {
        usage()
    };
    let mut params = SuiteParams::quick();
    params.seed = get(&flags, "seed", 0x51DE);
    let mut results = Vec::new();
    for path in [p1, p2] {
        let g = load(path);
        let (lcc, _) = topogen::graph::components::largest_component(&g);
        let t = BuiltTopology {
            name: path.to_string(),
            graph: lcc,
            annotations: None,
            router_as: None,
            as_overlay: None,
            spec: TopologySpec::MeasuredAs,
        };
        let sig = run_suite(&t, &params).signature;
        let hier = if t.graph.node_count() <= 2500 {
            topogen::core::hier::hierarchy_report(&t, &topogen::core::hier::HierOptions::default())
                .class
        } else {
            "-".into()
        };
        println!(
            "{path}: {} nodes, signature {sig}, hierarchy {hier}",
            t.graph.node_count()
        );
        results.push((sig.to_string(), hier));
    }
    println!();
    if results[0] == results[1] {
        println!("MATCH: the two topologies share the same large-scale structure");
    } else {
        println!("DIFFER: the topologies have different large-scale structure");
    }
}

fn cmd_hierarchy(args: &[String]) {
    let (pos, _) = parse_flags(args);
    let Some(path) = pos.first() else { usage() };
    let g = load(path);
    let (lcc, _) = topogen::graph::components::largest_component(&g);
    if lcc.node_count() > 2500 {
        eprintln!(
            "note: {} nodes — computing link values on the degree>1 core \
             (the paper's treatment of large graphs)",
            lcc.node_count()
        );
    }
    let t = BuiltTopology {
        name: path.clone(),
        graph: lcc,
        annotations: None,
        router_as: None,
        as_overlay: None,
        spec: TopologySpec::MeasuredAs,
    };
    let r = topogen::core::hier::hierarchy_report(
        &t,
        &topogen::core::hier::HierOptions {
            policy: false,
            core_threshold: 2500,
        },
    );
    println!("links analyzed: {}", r.values.len());
    println!("max link value: {:.4}", r.max);
    println!("median value:   {:.4}", r.median);
    println!("hierarchy:      {}", r.class);
    if let Some(c) = r.degree_correlation {
        println!("degree corr.:   {c:.3}");
    }
}
